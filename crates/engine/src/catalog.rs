//! The statistics catalog: where `ANALYZE` output lives between queries.

use std::collections::HashMap;

use rand::Rng;

use crate::analyze::{analyze, AnalyzeError, AnalyzeOptions};
use crate::stats::ColumnStatistics;
use crate::table::Table;

/// An in-memory `sys.stats`: one [`ColumnStatistics`] per (table, column).
#[derive(Debug, Default)]
pub struct Catalog {
    entries: HashMap<(String, String), ColumnStatistics>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run [`analyze`] and store the result, replacing any previous
    /// statistics for the column. Returns a reference to the stored entry.
    pub fn analyze_and_store(
        &mut self,
        table: &Table,
        column: &str,
        options: &AnalyzeOptions,
        rng: &mut impl Rng,
    ) -> Result<&ColumnStatistics, AnalyzeError> {
        let stats = analyze(table, column, options, rng)?;
        let key = (stats.table.clone(), stats.column.clone());
        self.entries.insert(key.clone(), stats);
        Ok(self.entries.get(&key).expect("just inserted"))
    }

    /// Fetch statistics, if present.
    pub fn get(&self, table: &str, column: &str) -> Option<&ColumnStatistics> {
        self.entries.get(&(table.to_string(), column.to_string()))
    }

    /// Drop statistics for one column (e.g. after heavy updates). Returns
    /// whether anything was removed.
    pub fn invalidate(&mut self, table: &str, column: &str) -> bool {
        self.entries.remove(&(table.to_string(), column.to_string())).is_some()
    }

    /// Number of stored statistics objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate all stored statistics.
    pub fn iter(&self) -> impl Iterator<Item = &ColumnStatistics> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplehist_storage::Layout;

    fn demo_table(seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        Table::builder("t")
            .column_with_blocking("a", (0..5000).collect(), 50, Layout::Random, &mut rng)
            .column_with_blocking(
                "b",
                (0..5000).map(|i| i / 10).collect(),
                50,
                Layout::Random,
                &mut rng,
            )
            .build()
    }

    #[test]
    fn store_get_invalidate() {
        let t = demo_table(1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut cat = Catalog::new();
        assert!(cat.is_empty());

        cat.analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(10), &mut rng)
            .expect("column exists");
        cat.analyze_and_store(&t, "b", &AnalyzeOptions::full_scan(10), &mut rng)
            .expect("column exists");
        assert_eq!(cat.len(), 2);
        assert!(cat.get("t", "a").is_some());
        assert!(cat.get("t", "missing").is_none());
        assert_eq!(cat.get("t", "b").expect("stored").distinct_estimate, 500.0);

        assert!(cat.invalidate("t", "a"));
        assert!(!cat.invalidate("t", "a"), "already gone");
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn restore_replaces() {
        let t = demo_table(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut cat = Catalog::new();
        cat.analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(10), &mut rng).expect("exists");
        cat.analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(25), &mut rng).expect("exists");
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("t", "a").expect("stored").histogram.num_buckets(), 25);
    }

    #[test]
    fn analyze_errors_do_not_pollute() {
        let t = demo_table(5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut cat = Catalog::new();
        let err = cat.analyze_and_store(&t, "zzz", &AnalyzeOptions::full_scan(10), &mut rng);
        assert!(err.is_err());
        assert!(cat.is_empty());
    }
}
