//! The statistics catalog: where `ANALYZE` output lives between queries.
//!
//! Two containers share one key scheme:
//!
//! * [`Catalog`] — the original single-threaded map, for tools and tests
//!   that own their statistics outright.
//! * [`StatsCatalog`] — the concurrent service catalog: lock-striped
//!   stripes of `RwLock<HashMap<…, Arc<VersionedStats>>>`, with
//!   epoch-stamped `Arc`-swap snapshots so estimation reads never block
//!   on an in-flight ANALYZE (the expensive build happens entirely
//!   outside any lock; the write lock is held only to swap a pointer).

use std::borrow::Borrow;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use rand::Rng;

use crate::accuracy::AccuracyLedger;
use crate::analyze::{analyze, AnalyzeError, AnalyzeOptions};
use crate::stats::ColumnStatistics;
use crate::table::Table;

/// Owned map key: one (table, column) pair.
///
/// Lookups go through a borrowed `(&str, &str)` view (the private
/// `KeyQuery` trait object) so `get("t", "c")` never allocates two
/// `String`s just to hash them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnKey {
    /// Owning table.
    pub table: String,
    /// Column name.
    pub column: String,
}

/// Borrowed view of a (table, column) key. Implemented by [`ColumnKey`]
/// and by `(&str, &str)`, with `Hash`/`Eq` defined on the trait object so
/// both hash identically — the standard borrowed-pair-lookup idiom.
trait KeyQuery {
    fn table(&self) -> &str;
    fn column(&self) -> &str;
}

impl KeyQuery for ColumnKey {
    fn table(&self) -> &str {
        &self.table
    }
    fn column(&self) -> &str {
        &self.column
    }
}

impl KeyQuery for (&str, &str) {
    fn table(&self) -> &str {
        self.0
    }
    fn column(&self) -> &str {
        self.1
    }
}

impl Hash for dyn KeyQuery + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.table().hash(state);
        self.column().hash(state);
    }
}

impl PartialEq for dyn KeyQuery + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.table() == other.table() && self.column() == other.column()
    }
}

impl Eq for dyn KeyQuery + '_ {}

// `HashMap` requires key and query to hash identically; route the owned
// key's `Hash` through the same trait-object impl the query uses.
impl Hash for ColumnKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self as &dyn KeyQuery).hash(state)
    }
}

impl<'a> Borrow<dyn KeyQuery + 'a> for ColumnKey {
    fn borrow(&self) -> &(dyn KeyQuery + 'a) {
        self
    }
}

/// An in-memory `sys.stats`: one [`ColumnStatistics`] per (table, column).
#[derive(Debug, Default)]
pub struct Catalog {
    entries: HashMap<ColumnKey, ColumnStatistics>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run [`analyze`] and store the result, replacing any previous
    /// statistics for the column. Returns a reference to the stored entry
    /// (from the insertion site — the map is hashed once, not three
    /// times).
    pub fn analyze_and_store(
        &mut self,
        table: &Table,
        column: &str,
        options: &AnalyzeOptions,
        rng: &mut impl Rng,
    ) -> Result<&ColumnStatistics, AnalyzeError> {
        let stats = analyze(table, column, options, rng)?;
        let key = ColumnKey { table: stats.table.clone(), column: stats.column.clone() };
        Ok(match self.entries.entry(key) {
            Entry::Occupied(mut slot) => {
                slot.insert(stats);
                slot.into_mut()
            }
            Entry::Vacant(slot) => slot.insert(stats),
        })
    }

    /// Fetch statistics, if present. Allocation-free: the borrowed pair
    /// hashes directly against the owned keys.
    pub fn get(&self, table: &str, column: &str) -> Option<&ColumnStatistics> {
        self.entries.get(&(table, column) as &dyn KeyQuery)
    }

    /// Drop statistics for one column (e.g. after heavy updates). Returns
    /// whether anything was removed.
    pub fn invalidate(&mut self, table: &str, column: &str) -> bool {
        self.entries.remove(&(table, column) as &dyn KeyQuery).is_some()
    }

    /// Number of stored statistics objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate all stored statistics.
    pub fn iter(&self) -> impl Iterator<Item = &ColumnStatistics> {
        self.entries.values()
    }
}

/// One epoch-stamped statistics snapshot inside [`StatsCatalog`].
///
/// Immutable once installed (readers hold it by `Arc`, so a concurrent
/// refresh can never mutate what an estimation call is reading — it
/// installs a *new* snapshot and bumps the epoch). The only interior
/// mutability is the probe watermark, which feeds staleness tracking and
/// never affects estimates.
#[derive(Debug)]
pub struct VersionedStats {
    /// The statistics themselves.
    pub stats: ColumnStatistics,
    /// Per-column version, strictly increasing across installs: a reader
    /// that once saw epoch `e` for a column will never be handed `< e`
    /// afterwards (pinned by the service torture test).
    pub epoch: u64,
    /// Clock reading (service ticks) when the snapshot was installed.
    pub built_at: u64,
    /// The column's modification counter at build time; staleness is the
    /// table counter minus this.
    pub mods_at_build: u64,
    /// Highest modification count at which a cross-validation probe
    /// re-certified this snapshot (starts at `mods_at_build`; a passed
    /// probe advances it so staleness re-arms instead of re-probing every
    /// tick).
    mods_validated: AtomicU64,
    /// Estimator-accuracy feedback for this epoch: execution records
    /// (predicted, actual) pairs here and the service watches the
    /// q-error quantiles for rot. Starts empty on every install, so a
    /// refresh automatically resets the feedback loop.
    pub accuracy: AccuracyLedger,
}

impl VersionedStats {
    /// The probe watermark: modifications already covered by the build or
    /// a passed probe.
    pub fn mods_validated(&self) -> u64 {
        self.mods_validated.load(Ordering::Relaxed)
    }

    /// Advance the probe watermark after a passed cross-validation probe
    /// (monotone; concurrent probes keep the largest value).
    pub fn record_probe_pass(&self, mods_now: u64) {
        self.mods_validated.fetch_max(mods_now, Ordering::Relaxed);
    }
}

/// How many lock stripes [`StatsCatalog::new`] defaults to.
pub const DEFAULT_STRIPES: usize = 16;

/// The concurrent statistics catalog: a sharded, lock-striped map from
/// (table, column) to [`Arc<VersionedStats>`].
///
/// **Snapshot contract.** Readers take a stripe's read lock only long
/// enough to clone an `Arc`; the returned snapshot is immutable, so an
/// estimation call never observes a partially-written entry. Writers
/// build statistics entirely outside the lock ([`analyze`] can take
/// milliseconds to seconds) and hold the write lock only to swap the
/// `Arc` and bump the per-column epoch — readers on *other* columns in
/// the same stripe block for that pointer swap at most.
///
/// **Epoch contract.** Each install stores `epoch = previous + 1`
/// (starting at 1), under the stripe write lock, so per-column epochs are
/// strictly increasing and a reader can assert freshness monotonicity.
#[derive(Debug)]
pub struct StatsCatalog {
    stripes: Box<[Stripe]>,
    /// Stripe-count mask (stripe count is a power of two).
    mask: usize,
}

/// One lock stripe of the concurrent catalog.
type Stripe = RwLock<HashMap<ColumnKey, Arc<VersionedStats>>>;

impl Default for StatsCatalog {
    fn default() -> Self {
        Self::new(DEFAULT_STRIPES)
    }
}

impl StatsCatalog {
    /// A catalog with `stripes` lock stripes (rounded up to a power of
    /// two, at least 1).
    pub fn new(stripes: usize) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        Self {
            stripes: (0..stripes).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: stripes - 1,
        }
    }

    /// Number of lock stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, table: &str, column: &str) -> &Stripe {
        // DefaultHasher::new() is fixed-keyed, so stripe assignment is
        // stable across threads and runs within one build.
        let mut hasher = DefaultHasher::new();
        (&(table, column) as &dyn KeyQuery).hash(&mut hasher);
        &self.stripes[hasher.finish() as usize & self.mask]
    }

    /// Fetch the current snapshot for a column, if any. Never blocks on
    /// an in-flight ANALYZE; only on a concurrent pointer swap in the same
    /// stripe.
    pub fn get(&self, table: &str, column: &str) -> Option<Arc<VersionedStats>> {
        let stripe = self.stripe_of(table, column).read().expect("stripe lock");
        stripe.get(&(table, column) as &dyn KeyQuery).cloned()
    }

    /// Install freshly built statistics, returning the new snapshot. The
    /// epoch is the previous snapshot's epoch plus one (1 for a first
    /// install).
    pub fn install(
        &self,
        stats: ColumnStatistics,
        mods_at_build: u64,
        built_at: u64,
    ) -> Arc<VersionedStats> {
        // Force-build the serve-time index before taking the stripe
        // lock: readers of the published snapshot get the fast path
        // without ever paying construction, and the write lock stays
        // pointer-swap cheap. The cell rides along with the move into
        // the Arc.
        stats.index();
        let key = ColumnKey { table: stats.table.clone(), column: stats.column.clone() };
        let mut stripe = self.stripe_of(&key.table, &key.column).write().expect("stripe lock");
        let epoch = stripe.get(&key).map_or(0, |prev| prev.epoch) + 1;
        let snapshot = Arc::new(VersionedStats {
            stats,
            epoch,
            built_at,
            mods_at_build,
            mods_validated: AtomicU64::new(mods_at_build),
            accuracy: AccuracyLedger::new(),
        });
        stripe.insert(key, Arc::clone(&snapshot));
        snapshot
    }

    /// Run [`analyze`] (outside any lock) and install the result.
    ///
    /// The modification watermark is read *before* the scan starts, so
    /// churn arriving while ANALYZE runs still counts as staleness against
    /// the new snapshot — the conservative reading.
    pub fn analyze_and_store(
        &self,
        table: &Table,
        column: &str,
        options: &AnalyzeOptions,
        rng: &mut impl Rng,
        built_at: u64,
    ) -> Result<Arc<VersionedStats>, AnalyzeError> {
        let mods_at_build =
            if table.column(column).is_some() { table.modifications(column) } else { 0 };
        let stats = analyze(table, column, options, rng)?;
        Ok(self.install(stats, mods_at_build, built_at))
    }

    /// Drop a column's statistics. Returns whether anything was removed.
    pub fn invalidate(&self, table: &str, column: &str) -> bool {
        let mut stripe = self.stripe_of(table, column).write().expect("stripe lock");
        stripe.remove(&(table, column) as &dyn KeyQuery).is_some()
    }

    /// Number of stored snapshots (consistent per stripe, not globally —
    /// concurrent installs may land between stripe reads).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().expect("stripe lock").len()).sum()
    }

    /// Whether the catalog holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every current snapshot, sorted by (table, column) so dumps are
    /// deterministic whatever the stripe layout.
    pub fn snapshot(&self) -> Vec<Arc<VersionedStats>> {
        let mut all: Vec<Arc<VersionedStats>> = self
            .stripes
            .iter()
            .flat_map(|s| s.read().expect("stripe lock").values().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by(|a, b| {
            (a.stats.table.as_str(), a.stats.column.as_str())
                .cmp(&(b.stats.table.as_str(), b.stats.column.as_str()))
        });
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplehist_storage::Layout;

    fn demo_table(seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        Table::builder("t")
            .column_with_blocking("a", (0..5000).collect(), 50, Layout::Random, &mut rng)
            .column_with_blocking(
                "b",
                (0..5000).map(|i| i / 10).collect(),
                50,
                Layout::Random,
                &mut rng,
            )
            .build()
    }

    #[test]
    fn store_get_invalidate() {
        let t = demo_table(1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut cat = Catalog::new();
        assert!(cat.is_empty());

        cat.analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(10), &mut rng)
            .expect("column exists");
        cat.analyze_and_store(&t, "b", &AnalyzeOptions::full_scan(10), &mut rng)
            .expect("column exists");
        assert_eq!(cat.len(), 2);
        assert!(cat.get("t", "a").is_some());
        assert!(cat.get("t", "missing").is_none());
        assert_eq!(cat.get("t", "b").expect("stored").distinct_estimate, 500.0);

        assert!(cat.invalidate("t", "a"));
        assert!(!cat.invalidate("t", "a"), "already gone");
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn restore_replaces() {
        let t = demo_table(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut cat = Catalog::new();
        cat.analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(10), &mut rng).expect("exists");
        cat.analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(25), &mut rng).expect("exists");
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("t", "a").expect("stored").histogram.num_buckets(), 25);
    }

    #[test]
    fn analyze_errors_do_not_pollute() {
        let t = demo_table(5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut cat = Catalog::new();
        let err = cat.analyze_and_store(&t, "zzz", &AnalyzeOptions::full_scan(10), &mut rng);
        assert!(err.is_err());
        assert!(cat.is_empty());
    }

    #[test]
    fn borrowed_and_owned_keys_hash_identically() {
        // The Borrow contract: ColumnKey and (&str, &str) must collide on
        // the same map slot. Exercised indirectly by get(), but pin the
        // hash equality itself so a refactor cannot silently split them.
        let owned = ColumnKey { table: "orders".into(), column: "amount".into() };
        let mut h1 = DefaultHasher::new();
        owned.hash(&mut h1);
        let mut h2 = DefaultHasher::new();
        (&("orders", "amount") as &dyn KeyQuery).hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
        let borrowed: &dyn KeyQuery = owned.borrow();
        assert!(borrowed == &("orders", "amount") as &dyn KeyQuery);
    }

    #[test]
    fn stats_catalog_epochs_increase_per_column() {
        let t = demo_table(7);
        let mut rng = StdRng::seed_from_u64(8);
        let cat = StatsCatalog::new(4);
        assert!(cat.is_empty());
        let s1 = cat
            .analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(10), &mut rng, 100)
            .expect("exists");
        assert_eq!(s1.epoch, 1);
        assert_eq!(s1.built_at, 100);
        let s2 = cat
            .analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(10), &mut rng, 200)
            .expect("exists");
        assert_eq!(s2.epoch, 2);
        let sb = cat
            .analyze_and_store(&t, "b", &AnalyzeOptions::full_scan(10), &mut rng, 300)
            .expect("exists");
        assert_eq!(sb.epoch, 1, "epochs are per column");
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.get("t", "a").expect("stored").epoch, 2);

        // The old snapshot is still intact for readers that hold it.
        assert_eq!(s1.stats.num_rows, 5000);
        assert!(cat.invalidate("t", "b"));
        assert!(cat.get("t", "b").is_none());
    }

    #[test]
    fn install_prebuilds_the_serve_time_index() {
        let t = demo_table(20);
        let mut rng = StdRng::seed_from_u64(21);
        let cat = StatsCatalog::default();
        cat.analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(10), &mut rng, 1)
            .expect("exists");
        let snap = cat.get("t", "a").expect("stored");
        assert!(
            snap.stats.index.is_built(),
            "readers must never pay index construction after install"
        );
    }

    #[test]
    fn stats_catalog_tracks_modification_watermarks() {
        let t = demo_table(9);
        let mut rng = StdRng::seed_from_u64(10);
        let cat = StatsCatalog::default();
        t.record_modifications("a", 40);
        let s = cat
            .analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(10), &mut rng, 1)
            .expect("exists");
        assert_eq!(s.mods_at_build, 40);
        assert_eq!(s.mods_validated(), 40);
        t.record_modifications("a", 25);
        assert_eq!(t.modifications("a") - s.mods_validated(), 25, "staleness since build");
        s.record_probe_pass(65);
        assert_eq!(s.mods_validated(), 65);
        s.record_probe_pass(50);
        assert_eq!(s.mods_validated(), 65, "watermark is monotone");
    }

    #[test]
    fn stats_catalog_snapshot_is_sorted_and_stripe_count_rounds() {
        let cat = StatsCatalog::new(3);
        assert_eq!(cat.num_stripes(), 4);
        let t = demo_table(11);
        let mut rng = StdRng::seed_from_u64(12);
        cat.analyze_and_store(&t, "b", &AnalyzeOptions::full_scan(5), &mut rng, 1).expect("exists");
        cat.analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(5), &mut rng, 2).expect("exists");
        let dump = cat.snapshot();
        let names: Vec<&str> = dump.iter().map(|s| s.stats.column.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn concurrent_readers_see_whole_snapshots() {
        // 4 readers hammer get() while a writer reinstalls; every observed
        // snapshot must be internally consistent and epochs monotone.
        let t = demo_table(13);
        let cat = StatsCatalog::new(2);
        let mut rng = StdRng::seed_from_u64(14);
        cat.analyze_and_store(&t, "a", &AnalyzeOptions::full_scan(10), &mut rng, 0)
            .expect("exists");
        std::thread::scope(|scope| {
            let cat = &cat;
            let t = &t;
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut last_epoch = 0;
                    for _ in 0..500 {
                        let s = cat.get("t", "a").expect("always present");
                        assert!(s.epoch >= last_epoch, "stale epoch read");
                        last_epoch = s.epoch;
                        assert_eq!(s.stats.table, "t");
                        assert_eq!(s.stats.histogram.total(), 5000);
                    }
                });
            }
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(15);
                for tick in 0..20 {
                    cat.analyze_and_store(t, "a", &AnalyzeOptions::full_scan(10), &mut rng, tick)
                        .expect("exists");
                }
            });
        });
        assert_eq!(cat.get("t", "a").expect("stored").epoch, 21);
    }
}
