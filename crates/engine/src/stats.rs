//! The statistics artifact `ANALYZE` produces, mirroring what the paper's
//! prototype recorded (Section 7.1: step values, per-step row counts,
//! distinct values in the sample, the density value).

use std::sync::OnceLock;

use samplehist_core::histogram::{
    BucketIndex, CompressedHistogram, CompressedIndex, EquiHeightHistogram,
};
use samplehist_storage::IoStats;

/// The serve-time fast path over one column's histograms: branchless
/// bucket indexes built once (at catalog install, or lazily on first
/// use) and shared by every estimation call thereafter.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsIndex {
    /// Index over the plain equi-height histogram.
    pub histogram: BucketIndex,
    /// Index over the compressed histogram, when ANALYZE built one.
    pub compressed: Option<CompressedIndex>,
}

/// Lazily-built cache cell for a column's [`StatsIndex`].
///
/// Deliberately inert with respect to the statistics' value semantics:
/// cloning yields an empty cell (the clone rebuilds on first use rather
/// than sharing, keeping [`ColumnStatistics`] send-safe without an
/// `Arc`), and equality always holds (the index is derived state — two
/// statistics objects are equal iff their histograms are, and equal
/// histograms produce byte-identical indexes).
#[derive(Default)]
pub struct CachedIndex(OnceLock<StatsIndex>);

impl std::fmt::Debug for CachedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CachedIndex")
            .field(&if self.0.get().is_some() { "built" } else { "empty" })
            .finish()
    }
}

impl CachedIndex {
    /// Whether the index has been built (without building it).
    pub fn is_built(&self) -> bool {
        self.0.get().is_some()
    }
}

impl Clone for CachedIndex {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for CachedIndex {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// Everything the optimizer knows about one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStatistics {
    /// Owning table.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Row count of the relation when analyzed.
    pub num_rows: u64,
    /// The equi-height histogram (exact or sampled).
    pub histogram: EquiHeightHistogram,
    /// A compressed histogram over the same acquisition, when the ANALYZE
    /// asked for one (Section 5's structure for duplicate-heavy columns):
    /// heavy values exact, residue equi-height.
    pub compressed: Option<CompressedHistogram>,
    /// Duplication density in \[0,1\]: 0 = all distinct, 1 = all identical
    /// (the paper's density convention, Section 7.1), estimated from the
    /// same sample as the histogram.
    pub density: f64,
    /// Estimated number of distinct values (the paper's GEE estimator on
    /// sampled modes; exact on a full scan).
    pub distinct_estimate: f64,
    /// Distinct values actually observed in the sample.
    pub distinct_in_sample: u64,
    /// Tuples the statistics were computed from.
    pub sample_size: u64,
    /// Human-readable description of how the statistics were built.
    pub method: String,
    /// I/O spent building them.
    pub io: IoStats,
    /// Serve-time index cache; see [`ColumnStatistics::index`]. Excluded
    /// from equality, cloned empty.
    pub index: CachedIndex,
}

impl ColumnStatistics {
    /// The serve-time [`StatsIndex`], building it on first call.
    ///
    /// [`StatsCatalog::install`](crate::StatsCatalog::install) forces the
    /// build before publishing a snapshot, so concurrent readers get the
    /// fast path without ever paying construction; ad-hoc consumers pay
    /// it once, lazily.
    pub fn index(&self) -> &StatsIndex {
        self.index.0.get_or_init(|| StatsIndex {
            histogram: BucketIndex::new(&self.histogram),
            compressed: self.compressed.as_ref().map(CompressedIndex::new),
        })
    }
    /// Sampling rate `sample_size / num_rows`.
    pub fn sampling_rate(&self) -> f64 {
        self.sample_size as f64 / self.num_rows as f64
    }

    /// Average rows per distinct value implied by the distinct estimate
    /// (≥ 1): the quantity an optimizer divides by for `col = ?`
    /// predicates with unknown constants.
    pub fn rows_per_distinct(&self) -> f64 {
        (self.num_rows as f64 / self.distinct_estimate.max(1.0)).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> ColumnStatistics {
        let data: Vec<i64> = (0..100).collect();
        ColumnStatistics {
            table: "t".into(),
            column: "c".into(),
            num_rows: 1000,
            histogram: EquiHeightHistogram::from_sorted_sample(&data, 10, 1000),
            compressed: None,
            density: 0.0,
            distinct_estimate: 250.0,
            distinct_in_sample: 100,
            sample_size: 100,
            method: "test".into(),
            io: IoStats::default(),
            index: CachedIndex::default(),
        }
    }

    #[test]
    fn derived_quantities() {
        let s = dummy();
        assert!((s.sampling_rate() - 0.1).abs() < 1e-12);
        assert!((s.rows_per_distinct() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn index_is_cached_and_inert_to_value_semantics() {
        let s = dummy();
        let a = s.index() as *const _;
        let b = s.index() as *const _;
        assert_eq!(a, b, "second call must hit the cache");
        assert!(s.index().compressed.is_none());

        // The cache never participates in equality, and clones start
        // empty (then rebuild to the same index, since the histograms
        // are equal).
        let t = s.clone();
        assert_eq!(s, t);
        assert_eq!(s.index().histogram, t.index().histogram);
        assert_eq!(format!("{:?}", CachedIndex::default()), "CachedIndex(\"empty\")");
    }

    #[test]
    fn rows_per_distinct_floors_at_one() {
        let mut s = dummy();
        s.distinct_estimate = 1_000_000.0;
        assert_eq!(s.rows_per_distinct(), 1.0);
        s.distinct_estimate = 0.0;
        assert_eq!(s.rows_per_distinct(), 1000.0);
    }
}
