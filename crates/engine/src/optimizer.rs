//! A toy access-path chooser: the downstream decision that histogram
//! quality actually feeds. The paper's introduction frames everything in
//! these terms ("the ability of an optimizer to make a good decision is
//! critically influenced by the availability of statistical
//! information"); this module makes the causal chain executable:
//! histogram error → cardinality error → wrong plan → real cost paid.

use crate::selectivity::CardinalityEstimate;

/// The two access paths of the classic selectivity decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Sequential scan of the whole heap file.
    TableScan,
    /// Secondary-index seek: one random page fetch per matching row.
    IndexSeek,
}

/// Page-cost coefficients (classic System-R-style constants: a random
/// fetch costs several sequential ones).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one page in sequential order.
    pub seq_page_cost: f64,
    /// Cost of one random page fetch.
    pub random_page_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // PostgreSQL's venerable defaults.
        Self { seq_page_cost: 1.0, random_page_cost: 4.0 }
    }
}

impl CostModel {
    /// Cost of scanning a `pages`-page table.
    pub fn scan_cost(&self, pages: u64) -> f64 {
        pages as f64 * self.seq_page_cost
    }

    /// Cost of an index seek returning `rows` rows (one random page per
    /// row — the pessimistic unclustered-index model).
    pub fn seek_cost(&self, rows: f64) -> f64 {
        rows * self.random_page_cost
    }
}

/// The chooser's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanChoice {
    /// The path the optimizer picked from the *estimate*.
    pub path: AccessPath,
    /// Estimated cost of a table scan.
    pub scan_cost: f64,
    /// Estimated cost of an index seek at the estimated cardinality.
    pub seek_cost: f64,
}

/// Pick the cheaper access path for a predicate with cardinality
/// `estimate` over a table of `pages` pages.
pub fn choose_access_path(
    estimate: &CardinalityEstimate,
    pages: u64,
    cost: &CostModel,
) -> PlanChoice {
    let scan_cost = cost.scan_cost(pages);
    let seek_cost = cost.seek_cost(estimate.rows);
    PlanChoice {
        path: if seek_cost < scan_cost { AccessPath::IndexSeek } else { AccessPath::TableScan },
        scan_cost,
        seek_cost,
    }
}

/// What a plan choice *actually* costs once the true cardinality is
/// known, and how much was wasted relative to the best decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanOutcome {
    /// The path that was executed.
    pub chosen: AccessPath,
    /// Its real cost at the true cardinality.
    pub actual_cost: f64,
    /// The cheaper of the two paths' real costs.
    pub optimal_cost: f64,
    /// `actual / optimal` (≥ 1; 1 = the estimate led to the right plan).
    pub regret: f64,
}

/// Evaluate a plan choice against the true cardinality.
pub fn evaluate_choice(
    choice: &PlanChoice,
    true_rows: u64,
    pages: u64,
    cost: &CostModel,
) -> PlanOutcome {
    let scan = cost.scan_cost(pages);
    let seek = cost.seek_cost(true_rows as f64);
    let actual = match choice.path {
        AccessPath::TableScan => scan,
        AccessPath::IndexSeek => seek,
    };
    let optimal = scan.min(seek);
    PlanOutcome {
        chosen: choice.path,
        actual_cost: actual,
        optimal_cost: optimal,
        regret: if optimal > 0.0 { actual / optimal } else { 1.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(rows: f64, n: f64) -> CardinalityEstimate {
        CardinalityEstimate { rows, selectivity: rows / n }
    }

    #[test]
    fn selective_predicates_seek() {
        let c = CostModel::default();
        // 10 rows from a 1000-page table: 40 < 1000.
        let choice = choose_access_path(&est(10.0, 100_000.0), 1000, &c);
        assert_eq!(choice.path, AccessPath::IndexSeek);
    }

    #[test]
    fn unselective_predicates_scan() {
        let c = CostModel::default();
        // 10k rows: 40k > 1000.
        let choice = choose_access_path(&est(10_000.0, 100_000.0), 1000, &c);
        assert_eq!(choice.path, AccessPath::TableScan);
    }

    #[test]
    fn crossover_point() {
        let c = CostModel::default();
        // Seek wins strictly below pages/4 rows.
        let pages = 1000u64;
        assert_eq!(choose_access_path(&est(249.0, 1e6), pages, &c).path, AccessPath::IndexSeek);
        assert_eq!(choose_access_path(&est(250.0, 1e6), pages, &c).path, AccessPath::TableScan);
    }

    #[test]
    fn regret_of_a_misestimate() {
        let c = CostModel::default();
        let pages = 1000u64;
        // Estimate says 50 rows (seek, cost 200); truth is 5000 rows
        // (seek really costs 20000, scan only 1000): regret 20x.
        let choice = choose_access_path(&est(50.0, 1e6), pages, &c);
        assert_eq!(choice.path, AccessPath::IndexSeek);
        let outcome = evaluate_choice(&choice, 5000, pages, &c);
        assert_eq!(outcome.actual_cost, 20_000.0);
        assert_eq!(outcome.optimal_cost, 1000.0);
        assert!((outcome.regret - 20.0).abs() < 1e-12);
    }

    #[test]
    fn good_estimates_have_unit_regret() {
        let c = CostModel::default();
        let choice = choose_access_path(&est(10.0, 1e6), 1000, &c);
        let outcome = evaluate_choice(&choice, 12, 1000, &c);
        assert_eq!(outcome.regret, 1.0);
    }
}
