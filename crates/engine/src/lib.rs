//! # samplehist-engine
//!
//! A miniature statistics subsystem in the style of the SQL Server 7.0
//! prototype the paper was evaluated on: the consumer-side substrate that
//! turns the core crate's algorithms into the artifacts a query optimizer
//! actually uses.
//!
//! * [`Table`] / [`Column`] — relations whose columns live in paged heap
//!   files ([`samplehist_storage::HeapFile`]) with explicit physical
//!   layouts.
//! * [`analyze`] — the `UPDATE STATISTICS` equivalent: builds
//!   [`ColumnStatistics`] (equi-height histogram + density + distinct
//!   estimate) by full scan, row sampling, block sampling, or the paper's
//!   adaptive cross-validated block sampling, with the I/O spent doing it
//!   metered.
//! * [`Catalog`] — where statistics live between queries.
//! * [`Predicate`] / [`estimate_cardinality`] — selectivity estimation
//!   for range and equality predicates from a histogram, the application
//!   that motivates the paper's max error metric (Theorems 1/3).
//! * [`optimizer`] — a toy index-seek vs table-scan chooser showing how
//!   histogram error propagates into plan quality.
//! * [`AccuracyLedger`] — per-epoch execution feedback: observed
//!   q-errors aggregated into mergeable quantile sketches, the signal
//!   the service's accuracy-driven refresh path watches.

//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use samplehist_engine::{analyze, estimate_cardinality, AnalyzeOptions, Predicate, Table};
//! use samplehist_storage::Layout;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let table = Table::builder("orders")
//!     .column("amount", (0..10_000).map(|i| i % 500).collect(), 64, Layout::Random, &mut rng)
//!     .build();
//!
//! // ANALYZE with the paper's adaptive CVB sampling...
//! let stats = analyze(&table, "amount", &AnalyzeOptions::adaptive(50), &mut rng).unwrap();
//! // ...and ask the optimizer-facing question.
//! let est = estimate_cardinality(&stats, &Predicate::Lt(100));
//! assert!((est.selectivity - 0.2).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod accuracy;
mod analyze;
mod catalog;
pub mod optimizer;
mod predicate;
mod selectivity;
mod stats;
mod table;

pub use accuracy::{qerror, AccuracyLedger, WorstPredicate};
pub use analyze::{
    analyze, analyze_resilient, analyze_resilient_traced, analyze_traced, AnalyzeError,
    AnalyzeMode, AnalyzeOptions, ResilientStatistics,
};
pub use catalog::{Catalog, ColumnKey, StatsCatalog, VersionedStats, DEFAULT_STRIPES};
pub use predicate::Predicate;
pub use samplehist_core::sampling::{DegradationPolicy, DegradationReport};
pub use selectivity::{
    estimate_cardinality, estimate_cardinality_scan, estimate_equijoin, CardinalityEstimate,
};
pub use stats::{CachedIndex, ColumnStatistics, StatsIndex};
pub use table::{Column, Table, TableBuilder};
