//! Single-column predicates: the query shapes whose selectivity a
//! histogram answers.

/// A predicate over one integer column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// `col = v`
    Eq(i64),
    /// `col < v`
    Lt(i64),
    /// `col ≤ v`
    Le(i64),
    /// `col > v`
    Gt(i64),
    /// `col ≥ v`
    Ge(i64),
    /// `low ≤ col ≤ high`
    Between {
        /// Inclusive lower bound.
        low: i64,
        /// Inclusive upper bound.
        high: i64,
    },
}

impl Predicate {
    /// Does `v` satisfy the predicate?
    pub fn matches(&self, v: i64) -> bool {
        match *self {
            Predicate::Eq(c) => v == c,
            Predicate::Lt(c) => v < c,
            Predicate::Le(c) => v <= c,
            Predicate::Gt(c) => v > c,
            Predicate::Ge(c) => v >= c,
            Predicate::Between { low, high } => low <= v && v <= high,
        }
    }

    /// The predicate as an inclusive value interval `[lo, hi]`, or `None`
    /// when the predicate is unsatisfiable (`col < i64::MIN`,
    /// `col > i64::MAX`, or an inverted BETWEEN).
    pub fn as_range(&self) -> Option<(i64, i64)> {
        match *self {
            Predicate::Eq(c) => Some((c, c)),
            Predicate::Lt(c) => (c > i64::MIN).then(|| (i64::MIN, c - 1)),
            Predicate::Le(c) => Some((i64::MIN, c)),
            Predicate::Gt(c) => (c < i64::MAX).then(|| (c + 1, i64::MAX)),
            Predicate::Ge(c) => Some((c, i64::MAX)),
            Predicate::Between { low, high } => (low <= high).then_some((low, high)),
        }
    }

    /// Exact result cardinality over **sorted** data (ground truth for
    /// estimation-error experiments).
    pub fn true_cardinality(&self, sorted: &[i64]) -> u64 {
        match self.as_range() {
            None => 0,
            Some((lo, hi)) => samplehist_core::estimate::true_range_count(sorted, lo, hi),
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Predicate::Eq(c) => write!(f, "col = {c}"),
            Predicate::Lt(c) => write!(f, "col < {c}"),
            Predicate::Le(c) => write!(f, "col <= {c}"),
            Predicate::Gt(c) => write!(f, "col > {c}"),
            Predicate::Ge(c) => write!(f, "col >= {c}"),
            Predicate::Between { low, high } => write!(f, "col BETWEEN {low} AND {high}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_agrees_with_range() {
        let preds = [
            Predicate::Eq(5),
            Predicate::Lt(5),
            Predicate::Le(5),
            Predicate::Gt(5),
            Predicate::Ge(5),
            Predicate::Between { low: 2, high: 8 },
        ];
        for p in preds {
            let (lo, hi) = p.as_range().expect("satisfiable");
            for v in -10..20i64 {
                assert_eq!(p.matches(v), v >= lo && v <= hi, "{p} at {v}");
            }
        }
    }

    #[test]
    fn true_cardinality_on_sorted_data() {
        let data = [1i64, 3, 3, 5, 7, 7, 7, 9];
        assert_eq!(Predicate::Eq(7).true_cardinality(&data), 3);
        assert_eq!(Predicate::Lt(5).true_cardinality(&data), 3);
        assert_eq!(Predicate::Le(5).true_cardinality(&data), 4);
        assert_eq!(Predicate::Gt(7).true_cardinality(&data), 1);
        assert_eq!(Predicate::Ge(7).true_cardinality(&data), 4);
        assert_eq!(Predicate::Between { low: 3, high: 7 }.true_cardinality(&data), 6);
        assert_eq!(Predicate::Eq(4).true_cardinality(&data), 0);
    }

    #[test]
    fn unsatisfiable_predicates_have_no_range() {
        assert_eq!(Predicate::Lt(i64::MIN).as_range(), None);
        assert_eq!(Predicate::Gt(i64::MAX).as_range(), None);
        assert_eq!(Predicate::Between { low: 5, high: 4 }.as_range(), None);
        let data = [i64::MIN, 0, i64::MAX];
        assert_eq!(Predicate::Lt(i64::MIN).true_cardinality(&data), 0);
        assert_eq!(Predicate::Gt(i64::MAX).true_cardinality(&data), 0);
        // And the satisfiable extremes still work.
        assert_eq!(Predicate::Le(i64::MAX).true_cardinality(&data), 3);
        assert_eq!(Predicate::Ge(i64::MIN).true_cardinality(&data), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Predicate::Eq(3).to_string(), "col = 3");
        assert_eq!(Predicate::Between { low: 1, high: 2 }.to_string(), "col BETWEEN 1 AND 2");
    }
}
