//! `ANALYZE` — building column statistics by scan or sample.

use rand::Rng;
use samplehist_obs::{Recorder, Span};

use samplehist_core::distinct::{DistinctEstimator, FrequencyProfile, Gee};
use samplehist_core::estimate::duplication_density_from_profile;
use samplehist_core::histogram::{selection_profitable, CompressedHistogram, EquiHeightHistogram};
use samplehist_core::sampling::{
    cvb, BlockPermutation, CvbConfig, CvbError, DegradationPolicy, DegradationReport, Schedule,
    TryBlockSource, ValidationMode,
};
use samplehist_core::BlockSource;
use samplehist_storage::{BlockSampler, IoStats, RecordSampler};

use crate::stats::ColumnStatistics;
use crate::table::Table;

/// How to gather the tuples that statistics are computed from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalyzeMode {
    /// Read everything: exact histogram, exact density, exact distinct
    /// count. The expensive baseline.
    FullScan,
    /// Uniform tuple sample (with replacement) of `rate · n` tuples. Pays
    /// one page read per tuple — the cost model the paper's Section 4
    /// starts from.
    RowSample {
        /// Sampling fraction in (0, 1].
        rate: f64,
    },
    /// Whole-page sample of `rate · pages` pages, all tuples used,
    /// *without* adaptivity — the strawman CVB improves on.
    BlockSample {
        /// Page-sampling fraction in (0, 1].
        rate: f64,
    },
    /// The paper's CVB algorithm: adaptive block sampling with
    /// cross-validation, using the analyzed doubling schedule seeded at
    /// `5·√n` tuples (the prototype's base step, Section 7.1 — but grown
    /// geometrically so the validation sample can actually certify `f`;
    /// constant √n increments never can once `k` is large).
    Adaptive {
        /// Target relative max error `f`.
        target_f: f64,
        /// Failure probability γ.
        gamma: f64,
    },
}

/// Options for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzeOptions {
    /// Histogram buckets (SQL Server 7.0 used up to 600 for an integer
    /// column — one page worth; Section 7.1).
    pub buckets: usize,
    /// Acquisition mode.
    pub mode: AnalyzeMode,
    /// Also build a compressed histogram (Section 5) from the same
    /// acquisition. Costs one extra pass over the (already gathered)
    /// sample; pays off on duplicate-heavy columns, where equality and
    /// heavy-value range estimates become exact.
    pub compressed: bool,
}

impl AnalyzeOptions {
    /// Full scan with `buckets` buckets.
    pub fn full_scan(buckets: usize) -> Self {
        Self { buckets, mode: AnalyzeMode::FullScan, compressed: false }
    }

    /// The paper's adaptive configuration with sensible defaults
    /// (f = 0.1, γ = 0.01).
    pub fn adaptive(buckets: usize) -> Self {
        Self {
            buckets,
            mode: AnalyzeMode::Adaptive { target_f: 0.1, gamma: 0.01 },
            compressed: false,
        }
    }

    /// Request a compressed histogram alongside the equi-height one.
    pub fn with_compressed(mut self) -> Self {
        self.compressed = true;
        self
    }
}

/// Why [`analyze`] or [`analyze_resilient`] can fail. (Statistics building
/// is deliberately infallible once the target exists and is readable — bad
/// rates and bucket counts are caller bugs and panic instead.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The named column does not exist in the table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Column requested.
        column: String,
    },
    /// Not a single trustworthy page could be read: there is nothing to
    /// build statistics from, however degraded.
    TableUnreadable {
        /// Table analyzed.
        table: String,
        /// Column analyzed.
        column: String,
        /// How many page reads were attempted before giving up.
        blocks_tried: usize,
    },
    /// The requested mode cannot run against a fallible source (row
    /// sampling needs tuple addressing, which [`TryBlockSource`] does not
    /// model).
    UnsupportedMode {
        /// The rejected mode's name.
        mode: &'static str,
    },
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::UnknownColumn { table, column } => {
                write!(f, "no column {column:?} in table {table:?}")
            }
            AnalyzeError::TableUnreadable { table, column, blocks_tried } => {
                write!(
                    f,
                    "no readable pages in {table:?}.{column:?} ({blocks_tried} reads attempted)"
                )
            }
            AnalyzeError::UnsupportedMode { mode } => {
                write!(f, "mode {mode:?} is not supported on fallible storage")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Build [`ColumnStatistics`] for `table.column`, SQL Server style:
/// histogram + density + distinct-value estimate from one pass of data
/// acquisition.
///
/// # Panics
/// On invalid options (zero buckets, rates outside (0,1], bad f/γ).
pub fn analyze(
    table: &Table,
    column: &str,
    options: &AnalyzeOptions,
    rng: &mut impl Rng,
) -> Result<ColumnStatistics, AnalyzeError> {
    analyze_traced(table, column, options, rng, &samplehist_obs::global())
}

/// [`analyze`] with an explicit [`Recorder`]: the root `analyze` span
/// covers the whole call, with `analyze.acquire` / `analyze.sort` /
/// `analyze.build` / `analyze.estimate` children marking the phases.
/// Samplers and the CVB loop report through the same recorder, so one
/// trace shows the pipeline end to end. Pass [`Recorder::disabled`] (or
/// call [`analyze`]) for an untraced run — results are bit-identical
/// either way, since recording never touches the RNG stream.
///
/// # Panics
/// On invalid options (zero buckets, rates outside (0,1], bad f/γ).
pub fn analyze_traced(
    table: &Table,
    column: &str,
    options: &AnalyzeOptions,
    rng: &mut impl Rng,
    recorder: &Recorder,
) -> Result<ColumnStatistics, AnalyzeError> {
    assert!(options.buckets > 0, "need at least one bucket");
    let col = table.column(column).ok_or_else(|| AnalyzeError::UnknownColumn {
        table: table.name().to_string(),
        column: column.to_string(),
    })?;
    let file = col.file();
    let n = file.num_tuples();

    let mut root = recorder.span("analyze");
    root.field("table", table.name().to_string());
    root.field("column", column.to_string());
    root.field("rows", n);
    root.field("pages", file.num_pages());
    root.field("buckets", options.buckets);

    // Acquire the tuples statistics are computed from, plus the I/O bill,
    // whether they are the whole column, and whether the acquisition
    // already produced them sorted (CVB merges sorted rounds; everything
    // else yields storage order).
    let mut acquire = root.child("analyze.acquire");
    let (sample, io, method, is_full, presorted) = match options.mode {
        AnalyzeMode::FullScan => {
            acquire.field("mode", "full_scan");
            let mut io = IoStats::new();
            let mut values = Vec::with_capacity(n as usize);
            for p in 0..file.num_pages() {
                let page = file.block(p);
                io.charge_page(page.len());
                values.extend_from_slice(page);
            }
            // A scan reads every page in storage order: all sequential
            // after the first fetch. Reported here because the scan reads
            // blocks directly rather than via a metered sampler.
            if recorder.is_enabled() && io.pages_read > 0 {
                recorder.counter("storage.pages_read", io.pages_read);
                recorder.counter("storage.tuples_read", io.tuples_read);
                recorder.counter("storage.bytes_read", io.tuples_read * 8);
                recorder.counter("storage.pages_sequential", io.pages_read - 1);
                recorder.counter("storage.pages_random", 1);
            }
            (values, io, "full scan".to_string(), true, false)
        }
        AnalyzeMode::RowSample { rate } => {
            assert!(rate > 0.0 && rate <= 1.0, "row-sampling rate must be in (0,1]");
            acquire.field("mode", "row_sample");
            acquire.field("rate", rate);
            let r = ((n as f64 * rate).ceil() as usize).max(1);
            let mut sampler = RecordSampler::with_recorder(recorder.clone());
            let values = sampler.sample(file, r, rng);
            (values, sampler.io(), format!("row sample {:.2}%", rate * 100.0), false, false)
        }
        AnalyzeMode::BlockSample { rate } => {
            assert!(rate > 0.0 && rate <= 1.0, "block-sampling rate must be in (0,1]");
            acquire.field("mode", "block_sample");
            acquire.field("rate", rate);
            let g = ((file.num_pages() as f64 * rate).ceil() as usize).clamp(1, file.num_pages());
            let mut sampler = BlockSampler::with_recorder(recorder.clone());
            let values = sampler.sample(file, g, rng);
            let full = g == file.num_pages();
            (values, sampler.io(), format!("block sample {:.2}%", rate * 100.0), full, false)
        }
        AnalyzeMode::Adaptive { target_f, gamma } => {
            acquire.field("mode", "adaptive");
            acquire.field("target_f", target_f);
            let b = file.avg_tuples_per_block().max(1.0);
            let initial_blocks =
                (((5.0 * (n as f64).sqrt()) / b).ceil() as usize).clamp(1, file.num_pages());
            let config = CvbConfig {
                buckets: options.buckets,
                target_f,
                gamma,
                schedule: Schedule::Doubling { initial_blocks },
                validation: ValidationMode::AllTuples,
                max_block_fraction: 1.0,
            };
            let result = cvb::run_traced(file, &config, rng, recorder);
            let io = IoStats {
                pages_read: result.blocks_sampled as u64,
                tuples_read: result.tuples_sampled,
            };
            let method = format!(
                "adaptive CVB (f={target_f}, {} rounds, {})",
                result.rounds.len(),
                if result.converged { "converged" } else { "exhausted" }
            );
            (result.sample_sorted, io, method, result.exhausted, true)
        }
    };
    acquire.field("pages_read", io.pages_read);
    acquire.field("tuples_read", io.tuples_read);
    acquire.field("sampling_rate", io.tuples_read as f64 / (n.max(1)) as f64);
    acquire.finish();

    let acquisition = Acquisition { sample, io, method, is_full, presorted };
    Ok(finish_statistics(table.name(), column, n, options, acquisition, &mut root))
}

/// What an acquisition phase hands to the statistics builder.
struct Acquisition {
    sample: Vec<i64>,
    io: IoStats,
    method: String,
    is_full: bool,
    presorted: bool,
}

/// The mode-independent back half of ANALYZE: sort routing, histogram and
/// compressed-histogram construction, density and distinct estimation —
/// shared between [`analyze_traced`] and [`analyze_resilient_traced`] so
/// the degraded path builds statistics exactly like the clean one.
fn finish_statistics(
    table: &str,
    column: &str,
    n: u64,
    options: &AnalyzeOptions,
    acquisition: Acquisition,
    root: &mut Span,
) -> ColumnStatistics {
    let Acquisition { mut sample, io, method, is_full, presorted } = acquisition;

    // Decide whether the full sort can be skipped: CVB hands back an
    // already-sorted sample, and for everything else the selection/radix
    // rank resolvers plus the hashed frequency profile cover every
    // downstream consumer without a global order (skipped only at tiny
    // `n`, where the sort is free anyway and the routes tie). The
    // `analyze.sort` span is always emitted so traces keep their shape;
    // its `route` field says what actually happened.
    let sort_free = !presorted && selection_profitable(sample.len(), options.buckets);
    let mut sort_span = root.child("analyze.sort");
    sort_span.field("n", sample.len());
    sort_span.field(
        "route",
        if presorted {
            "presorted"
        } else if sort_free {
            "deferred_sort_free"
        } else {
            "sorted"
        },
    );
    if !presorted && !sort_free {
        // Full scans and large samples dominate ANALYZE wall-clock here;
        // sort across cores (serial fallback below the parallel cutoff).
        samplehist_parallel::par_sort_unstable(&mut sample);
    }
    sort_span.finish();

    let mut build_span = root.child("analyze.build");
    build_span.field("buckets", options.buckets);
    build_span.field("route", if is_full { "exact" } else { "scaled_sample" });
    build_span.field("sort_free", sort_free);
    build_span.field("compressed", options.compressed);
    // The sort-free equi-height build partitions `sample` in place; the
    // compressed build only reads it, and every consumer below is
    // order-insensitive, so build order does not matter.
    let compressed = options.compressed.then(|| match (sort_free, is_full) {
        (true, true) => CompressedHistogram::from_unsorted(&sample, options.buckets),
        (true, false) => CompressedHistogram::from_unsorted_sample(&sample, options.buckets, n),
        (false, true) => CompressedHistogram::from_sorted(&sample, options.buckets),
        (false, false) => CompressedHistogram::from_sorted_sample(&sample, options.buckets, n),
    });
    let histogram = match (sort_free, is_full) {
        (true, true) => EquiHeightHistogram::from_unsorted_in_place(&mut sample, options.buckets),
        (true, false) => {
            EquiHeightHistogram::from_unsorted_sample_in_place(&mut sample, options.buckets, n)
        }
        (false, true) => EquiHeightHistogram::from_sorted(&sample, options.buckets),
        (false, false) => EquiHeightHistogram::from_sorted_sample(&sample, options.buckets, n),
    };
    build_span.finish();

    let mut est_span = root.child("analyze.estimate");
    let profile = if sort_free {
        FrequencyProfile::from_unsorted_sample(&sample)
    } else {
        FrequencyProfile::from_sorted_sample(&sample)
    };
    let distinct_in_sample = profile.distinct_in_sample();
    let distinct_estimate =
        if is_full { distinct_in_sample as f64 } else { Gee.estimate(&profile, n) };
    // Density comes from the profile on both routes (bit-identical to the
    // sorted run-length form), so the sort-free path never needs order.
    let density = duplication_density_from_profile(&profile);
    est_span.field("distinct_in_sample", distinct_in_sample);
    est_span.field("distinct_estimate", distinct_estimate);
    est_span.finish();

    root.field("method", method.clone());
    root.field("sample_size", sample.len());

    ColumnStatistics {
        table: table.to_string(),
        column: column.to_string(),
        num_rows: n,
        histogram,
        compressed,
        density,
        distinct_estimate,
        distinct_in_sample,
        sample_size: sample.len() as u64,
        method,
        io,
        index: crate::stats::CachedIndex::default(),
    }
}

/// The outcome of a resilient ANALYZE: the statistics plus a faithful
/// account of what was lost obtaining them.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientStatistics {
    /// The statistics, built from every tuple that survived.
    pub stats: ColumnStatistics,
    /// What failed, what was replaced, and what the cross-validation
    /// threshold degraded to (see [`DegradationReport`]).
    pub degradation: DegradationReport,
}

/// [`analyze`] against storage whose reads can fail.
///
/// Runs the same acquisition modes over a [`TryBlockSource`] (a
/// fault-injecting wrapper, a retrying wrapper, or any future real I/O
/// backend), skipping pages that fail for good, replacing them from
/// undrawn pages up to `policy.replacement_budget`, and degrading
/// gracefully when replacements run out — in adaptive mode the
/// cross-validation threshold widens per Theorem 7 and the report says by
/// how much. Returns [`AnalyzeError::TableUnreadable`] instead of
/// panicking when not a single page can be read.
///
/// `AnalyzeMode::RowSample` is rejected ([`AnalyzeError::UnsupportedMode`]):
/// it needs tuple addressing, which page-granular fallible storage does
/// not model.
///
/// Determinism: with the same fault schedule and the same `rng` seed, the
/// result — and the emitted trace, timestamps aside — is bit-identical
/// across runs. On fault-free storage the statistics equal what
/// [`analyze`] produces for the same seed in adaptive mode.
///
/// # Panics
/// On invalid options (zero buckets, rates outside (0,1], bad f/γ).
pub fn analyze_resilient(
    table: &str,
    column: &str,
    source: &impl TryBlockSource,
    options: &AnalyzeOptions,
    policy: &DegradationPolicy,
    rng: &mut impl Rng,
) -> Result<ResilientStatistics, AnalyzeError> {
    analyze_resilient_traced(table, column, source, options, policy, rng, &samplehist_obs::global())
}

/// [`analyze_resilient`] with an explicit [`Recorder`]: same span tree as
/// [`analyze_traced`] plus the degradation record — `analyze.blocks_failed`
/// counters as pages are lost, a root-span `degraded` field, and one
/// `analyze.degraded` counter per degraded run, so fleets can alert on the
/// rate of lossy ANALYZE runs.
#[allow(clippy::too_many_arguments)]
pub fn analyze_resilient_traced(
    table: &str,
    column: &str,
    source: &impl TryBlockSource,
    options: &AnalyzeOptions,
    policy: &DegradationPolicy,
    rng: &mut impl Rng,
    recorder: &Recorder,
) -> Result<ResilientStatistics, AnalyzeError> {
    assert!(options.buckets > 0, "need at least one bucket");
    let n = source.num_tuples();
    let pages = source.num_blocks();
    let unreadable = |blocks_tried: usize| AnalyzeError::TableUnreadable {
        table: table.to_string(),
        column: column.to_string(),
        blocks_tried,
    };

    let mut root = recorder.span("analyze");
    root.field("table", table.to_string());
    root.field("column", column.to_string());
    root.field("rows", n);
    root.field("pages", pages);
    root.field("buckets", options.buckets);
    root.field("resilient", true);

    let mut acquire = root.child("analyze.acquire");
    let (acquisition, degradation) = match options.mode {
        AnalyzeMode::RowSample { .. } => {
            return Err(AnalyzeError::UnsupportedMode { mode: "row_sample" })
        }
        AnalyzeMode::FullScan => {
            acquire.field("mode", "full_scan");
            let mut io = IoStats::new();
            let mut values = Vec::with_capacity(n as usize);
            let mut blocks_failed = 0usize;
            let mut last_error = None;
            for p in 0..pages {
                match source.try_block(p) {
                    Ok(page) => {
                        io.charge_page(page.len());
                        values.extend_from_slice(&page);
                    }
                    Err(err) => {
                        blocks_failed += 1;
                        last_error = Some(err);
                        recorder.counter("analyze.blocks_failed", 1);
                    }
                }
            }
            if values.is_empty() {
                return Err(unreadable(pages));
            }
            let is_full = blocks_failed == 0;
            let method = if is_full {
                "full scan".to_string()
            } else {
                format!("degraded scan ({blocks_failed} of {pages} pages lost)")
            };
            let degradation = DegradationReport {
                blocks_failed,
                replacements_drawn: 0,
                effective_target_f: 0.0,
                degraded: !is_full,
                last_error,
            };
            (Acquisition { sample: values, io, method, is_full, presorted: false }, degradation)
        }
        AnalyzeMode::BlockSample { rate } => {
            assert!(rate > 0.0 && rate <= 1.0, "block-sampling rate must be in (0,1]");
            acquire.field("mode", "block_sample");
            acquire.field("rate", rate);
            let g = ((pages as f64 * rate).ceil() as usize).clamp(1, pages);
            let mut permutation = BlockPermutation::with_len(pages, rng);
            let mut io = IoStats::new();
            let mut values = Vec::new();
            let mut kept = 0usize;
            let mut blocks_failed = 0usize;
            let mut replacements_drawn = 0usize;
            let mut last_error = None;
            let mut want = g;
            while want > 0 {
                let ids: Vec<usize> = permutation.take(want).to_vec();
                if ids.is_empty() {
                    break;
                }
                want = 0;
                for id in ids {
                    match source.try_block(id) {
                        Ok(page) => {
                            io.charge_page(page.len());
                            values.extend_from_slice(&page);
                            kept += 1;
                        }
                        Err(err) => {
                            blocks_failed += 1;
                            last_error = Some(err);
                            recorder.counter("analyze.blocks_failed", 1);
                            if replacements_drawn < policy.replacement_budget {
                                replacements_drawn += 1;
                                want += 1;
                            }
                        }
                    }
                }
            }
            if values.is_empty() {
                return Err(unreadable(permutation.drawn()));
            }
            let is_full = kept == pages;
            let method = if blocks_failed == 0 {
                format!("block sample {:.2}%", rate * 100.0)
            } else {
                format!(
                    "degraded block sample {:.2}% ({blocks_failed} pages lost, {replacements_drawn} replaced)",
                    rate * 100.0
                )
            };
            let degradation = DegradationReport {
                blocks_failed,
                replacements_drawn,
                effective_target_f: 0.0,
                degraded: blocks_failed > 0,
                last_error,
            };
            (Acquisition { sample: values, io, method, is_full, presorted: false }, degradation)
        }
        AnalyzeMode::Adaptive { target_f, gamma } => {
            acquire.field("mode", "adaptive");
            acquire.field("target_f", target_f);
            let b = source.avg_tuples_per_block().max(1.0);
            let initial_blocks =
                (((5.0 * (n as f64).sqrt()) / b).ceil() as usize).clamp(1, pages.max(1));
            let config = CvbConfig {
                buckets: options.buckets,
                target_f,
                gamma,
                schedule: Schedule::Doubling { initial_blocks },
                validation: ValidationMode::AllTuples,
                max_block_fraction: 1.0,
            };
            let (result, report) = cvb::try_run_traced(source, &config, policy, rng, recorder)
                .map_err(|CvbError::SourceUnreadable { blocks_tried, .. }| {
                    unreadable(blocks_tried)
                })?;
            let io = IoStats {
                pages_read: (result.blocks_sampled - report.blocks_failed) as u64,
                tuples_read: result.tuples_sampled,
            };
            let method = format!(
                "adaptive CVB (f={target_f}, {} rounds, {}{})",
                result.rounds.len(),
                if result.converged { "converged" } else { "exhausted" },
                if report.degraded {
                    format!(", degraded to f={:.3}", report.effective_target_f)
                } else {
                    String::new()
                }
            );
            // A degraded "full" walk read every page but lost some: the
            // sample is not the relation, so the histogram must stay scaled.
            let is_full = result.exhausted && !report.degraded;
            (
                Acquisition { sample: result.sample_sorted, io, method, is_full, presorted: true },
                report,
            )
        }
    };
    acquire.field("pages_read", acquisition.io.pages_read);
    acquire.field("tuples_read", acquisition.io.tuples_read);
    acquire.field("sampling_rate", acquisition.io.tuples_read as f64 / (n.max(1)) as f64);
    acquire.finish();

    if degradation.degraded {
        recorder.counter("analyze.degraded", 1);
    }
    root.field("degraded", degradation.degraded);
    root.field("blocks_failed", degradation.blocks_failed);

    let stats = finish_statistics(table, column, n, options, acquisition, &mut root);
    Ok(ResilientStatistics { stats, degradation })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplehist_storage::Layout;

    fn orders_table(seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        // 20k rows: ids distinct, amounts with 100 duplicates each.
        Table::builder("orders")
            .column_with_blocking("id", (0..20_000).collect(), 100, Layout::Random, &mut rng)
            .column_with_blocking(
                "amount",
                (0..20_000).map(|i| i % 200).collect(),
                100,
                Layout::Random,
                &mut rng,
            )
            .build()
    }

    #[test]
    fn full_scan_is_exact() {
        let t = orders_table(1);
        let mut rng = StdRng::seed_from_u64(2);
        let s =
            analyze(&t, "amount", &AnalyzeOptions::full_scan(50), &mut rng).expect("column exists");
        assert_eq!(s.sample_size, 20_000);
        assert_eq!(s.distinct_estimate, 200.0);
        assert_eq!(s.distinct_in_sample, 200);
        assert_eq!(s.io.pages_read, 200); // 20k rows / 100 per page
        assert_eq!(s.histogram.total(), 20_000);
        assert!(s.method.contains("full scan"));
        // Each value 100 times: density = 99/19999.
        assert!((s.density - 99.0 / 19_999.0).abs() < 1e-12);
    }

    #[test]
    fn row_sample_meters_page_per_tuple() {
        let t = orders_table(3);
        let mut rng = StdRng::seed_from_u64(4);
        let opts = AnalyzeOptions {
            buckets: 20,
            mode: AnalyzeMode::RowSample { rate: 0.05 },
            compressed: false,
        };
        let s = analyze(&t, "id", &opts, &mut rng).expect("column exists");
        assert_eq!(s.sample_size, 1000);
        assert_eq!(s.io.pages_read, 1000, "a page fault per sampled row");
        assert_eq!(s.histogram.total(), 20_000, "counts scaled to the table");
        // All-distinct column: GEE must not underestimate catastrophically.
        assert!(s.distinct_estimate >= 1000.0);
    }

    #[test]
    fn block_sample_meters_pages() {
        let t = orders_table(5);
        let mut rng = StdRng::seed_from_u64(6);
        let opts = AnalyzeOptions {
            buckets: 20,
            mode: AnalyzeMode::BlockSample { rate: 0.1 },
            compressed: false,
        };
        let s = analyze(&t, "amount", &opts, &mut rng).expect("column exists");
        assert_eq!(s.io.pages_read, 20); // 10% of 200 pages
        assert_eq!(s.sample_size, 2000);
        assert!(s.sampling_rate() > 0.09 && s.sampling_rate() < 0.11);
    }

    #[test]
    fn adaptive_mode_runs_and_reports() {
        let t = orders_table(7);
        let mut rng = StdRng::seed_from_u64(8);
        let opts = AnalyzeOptions {
            buckets: 20,
            mode: AnalyzeMode::Adaptive { target_f: 0.2, gamma: 0.05 },
            compressed: false,
        };
        let s = analyze(&t, "amount", &opts, &mut rng).expect("column exists");
        assert!(s.method.contains("adaptive CVB"));
        assert!(s.io.pages_read > 0);
        assert!(s.sample_size > 0);
        assert_eq!(s.histogram.num_buckets(), 20);
    }

    #[test]
    fn sort_free_route_matches_sorted_reference() {
        // 20k rows with 50 buckets clears the selection-profitability bar,
        // so this full scan takes the deferred sort-free route; every
        // statistic must still match one built from the sorted column.
        let t = orders_table(13);
        let mut rng = StdRng::seed_from_u64(14);
        let opts = AnalyzeOptions::full_scan(50).with_compressed();
        let s = analyze(&t, "amount", &opts, &mut rng).expect("column exists");
        let mut sorted: Vec<i64> = (0..20_000).map(|i| i % 200).collect();
        sorted.sort_unstable();
        assert_eq!(s.histogram, EquiHeightHistogram::from_sorted(&sorted, 50));
        assert_eq!(s.compressed, Some(CompressedHistogram::from_sorted(&sorted, 50)));
        let expected = samplehist_core::estimate::duplication_density(&sorted);
        assert_eq!(s.density.to_bits(), expected.to_bits(), "density must be bit-identical");
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = orders_table(9);
        let mut rng = StdRng::seed_from_u64(10);
        let err =
            analyze(&t, "nope", &AnalyzeOptions::full_scan(10), &mut rng).expect_err("must fail");
        assert_eq!(
            err,
            AnalyzeError::UnknownColumn { table: "orders".into(), column: "nope".into() }
        );
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    #[should_panic(expected = "rate must be in (0,1]")]
    fn bad_rate_panics() {
        let t = orders_table(11);
        let mut rng = StdRng::seed_from_u64(12);
        let opts = AnalyzeOptions {
            buckets: 10,
            mode: AnalyzeMode::RowSample { rate: 1.5 },
            compressed: false,
        };
        let _ = analyze(&t, "id", &opts, &mut rng);
    }
}
