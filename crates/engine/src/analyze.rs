//! `ANALYZE` — building column statistics by scan or sample.

use rand::Rng;
use samplehist_obs::Recorder;

use samplehist_core::distinct::{DistinctEstimator, FrequencyProfile, Gee};
use samplehist_core::estimate::duplication_density_from_profile;
use samplehist_core::histogram::{selection_profitable, CompressedHistogram, EquiHeightHistogram};
use samplehist_core::sampling::{cvb, CvbConfig, Schedule, ValidationMode};
use samplehist_core::BlockSource;
use samplehist_storage::{BlockSampler, IoStats, RecordSampler};

use crate::stats::ColumnStatistics;
use crate::table::Table;

/// How to gather the tuples that statistics are computed from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalyzeMode {
    /// Read everything: exact histogram, exact density, exact distinct
    /// count. The expensive baseline.
    FullScan,
    /// Uniform tuple sample (with replacement) of `rate · n` tuples. Pays
    /// one page read per tuple — the cost model the paper's Section 4
    /// starts from.
    RowSample {
        /// Sampling fraction in (0, 1].
        rate: f64,
    },
    /// Whole-page sample of `rate · pages` pages, all tuples used,
    /// *without* adaptivity — the strawman CVB improves on.
    BlockSample {
        /// Page-sampling fraction in (0, 1].
        rate: f64,
    },
    /// The paper's CVB algorithm: adaptive block sampling with
    /// cross-validation, using the analyzed doubling schedule seeded at
    /// `5·√n` tuples (the prototype's base step, Section 7.1 — but grown
    /// geometrically so the validation sample can actually certify `f`;
    /// constant √n increments never can once `k` is large).
    Adaptive {
        /// Target relative max error `f`.
        target_f: f64,
        /// Failure probability γ.
        gamma: f64,
    },
}

/// Options for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzeOptions {
    /// Histogram buckets (SQL Server 7.0 used up to 600 for an integer
    /// column — one page worth; Section 7.1).
    pub buckets: usize,
    /// Acquisition mode.
    pub mode: AnalyzeMode,
    /// Also build a compressed histogram (Section 5) from the same
    /// acquisition. Costs one extra pass over the (already gathered)
    /// sample; pays off on duplicate-heavy columns, where equality and
    /// heavy-value range estimates become exact.
    pub compressed: bool,
}

impl AnalyzeOptions {
    /// Full scan with `buckets` buckets.
    pub fn full_scan(buckets: usize) -> Self {
        Self { buckets, mode: AnalyzeMode::FullScan, compressed: false }
    }

    /// The paper's adaptive configuration with sensible defaults
    /// (f = 0.1, γ = 0.01).
    pub fn adaptive(buckets: usize) -> Self {
        Self {
            buckets,
            mode: AnalyzeMode::Adaptive { target_f: 0.1, gamma: 0.01 },
            compressed: false,
        }
    }

    /// Request a compressed histogram alongside the equi-height one.
    pub fn with_compressed(mut self) -> Self {
        self.compressed = true;
        self
    }
}

/// Why [`analyze`] can fail. (Statistics building is deliberately
/// infallible once the target exists — bad rates and bucket counts are
/// caller bugs and panic instead.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The named column does not exist in the table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Column requested.
        column: String,
    },
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::UnknownColumn { table, column } => {
                write!(f, "no column {column:?} in table {table:?}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Build [`ColumnStatistics`] for `table.column`, SQL Server style:
/// histogram + density + distinct-value estimate from one pass of data
/// acquisition.
///
/// # Panics
/// On invalid options (zero buckets, rates outside (0,1], bad f/γ).
pub fn analyze(
    table: &Table,
    column: &str,
    options: &AnalyzeOptions,
    rng: &mut impl Rng,
) -> Result<ColumnStatistics, AnalyzeError> {
    analyze_traced(table, column, options, rng, &samplehist_obs::global())
}

/// [`analyze`] with an explicit [`Recorder`]: the root `analyze` span
/// covers the whole call, with `analyze.acquire` / `analyze.sort` /
/// `analyze.build` / `analyze.estimate` children marking the phases.
/// Samplers and the CVB loop report through the same recorder, so one
/// trace shows the pipeline end to end. Pass [`Recorder::disabled`] (or
/// call [`analyze`]) for an untraced run — results are bit-identical
/// either way, since recording never touches the RNG stream.
///
/// # Panics
/// On invalid options (zero buckets, rates outside (0,1], bad f/γ).
pub fn analyze_traced(
    table: &Table,
    column: &str,
    options: &AnalyzeOptions,
    rng: &mut impl Rng,
    recorder: &Recorder,
) -> Result<ColumnStatistics, AnalyzeError> {
    assert!(options.buckets > 0, "need at least one bucket");
    let col = table.column(column).ok_or_else(|| AnalyzeError::UnknownColumn {
        table: table.name().to_string(),
        column: column.to_string(),
    })?;
    let file = col.file();
    let n = file.num_tuples();

    let mut root = recorder.span("analyze");
    root.field("table", table.name().to_string());
    root.field("column", column.to_string());
    root.field("rows", n);
    root.field("pages", file.num_pages());
    root.field("buckets", options.buckets);

    // Acquire the tuples statistics are computed from, plus the I/O bill,
    // whether they are the whole column, and whether the acquisition
    // already produced them sorted (CVB merges sorted rounds; everything
    // else yields storage order).
    let mut acquire = root.child("analyze.acquire");
    let (mut sample, io, method, is_full, presorted) = match options.mode {
        AnalyzeMode::FullScan => {
            acquire.field("mode", "full_scan");
            let mut io = IoStats::new();
            let mut values = Vec::with_capacity(n as usize);
            for p in 0..file.num_pages() {
                let page = file.block(p);
                io.charge_page(page.len());
                values.extend_from_slice(page);
            }
            // A scan reads every page in storage order: all sequential
            // after the first fetch. Reported here because the scan reads
            // blocks directly rather than via a metered sampler.
            if recorder.is_enabled() && io.pages_read > 0 {
                recorder.counter("storage.pages_read", io.pages_read);
                recorder.counter("storage.tuples_read", io.tuples_read);
                recorder.counter("storage.bytes_read", io.tuples_read * 8);
                recorder.counter("storage.pages_sequential", io.pages_read - 1);
                recorder.counter("storage.pages_random", 1);
            }
            (values, io, "full scan".to_string(), true, false)
        }
        AnalyzeMode::RowSample { rate } => {
            assert!(rate > 0.0 && rate <= 1.0, "row-sampling rate must be in (0,1]");
            acquire.field("mode", "row_sample");
            acquire.field("rate", rate);
            let r = ((n as f64 * rate).ceil() as usize).max(1);
            let mut sampler = RecordSampler::with_recorder(recorder.clone());
            let values = sampler.sample(file, r, rng);
            (values, sampler.io(), format!("row sample {:.2}%", rate * 100.0), false, false)
        }
        AnalyzeMode::BlockSample { rate } => {
            assert!(rate > 0.0 && rate <= 1.0, "block-sampling rate must be in (0,1]");
            acquire.field("mode", "block_sample");
            acquire.field("rate", rate);
            let g = ((file.num_pages() as f64 * rate).ceil() as usize).clamp(1, file.num_pages());
            let mut sampler = BlockSampler::with_recorder(recorder.clone());
            let values = sampler.sample(file, g, rng);
            let full = g == file.num_pages();
            (values, sampler.io(), format!("block sample {:.2}%", rate * 100.0), full, false)
        }
        AnalyzeMode::Adaptive { target_f, gamma } => {
            acquire.field("mode", "adaptive");
            acquire.field("target_f", target_f);
            let b = file.avg_tuples_per_block().max(1.0);
            let initial_blocks =
                (((5.0 * (n as f64).sqrt()) / b).ceil() as usize).clamp(1, file.num_pages());
            let config = CvbConfig {
                buckets: options.buckets,
                target_f,
                gamma,
                schedule: Schedule::Doubling { initial_blocks },
                validation: ValidationMode::AllTuples,
                max_block_fraction: 1.0,
            };
            let result = cvb::run_traced(file, &config, rng, recorder);
            let io = IoStats {
                pages_read: result.blocks_sampled as u64,
                tuples_read: result.tuples_sampled,
            };
            let method = format!(
                "adaptive CVB (f={target_f}, {} rounds, {})",
                result.rounds.len(),
                if result.converged { "converged" } else { "exhausted" }
            );
            (result.sample_sorted, io, method, result.exhausted, true)
        }
    };
    acquire.field("pages_read", io.pages_read);
    acquire.field("tuples_read", io.tuples_read);
    acquire.field("sampling_rate", io.tuples_read as f64 / (n.max(1)) as f64);
    acquire.finish();

    // Decide whether the full sort can be skipped: CVB hands back an
    // already-sorted sample, and for everything else the selection/radix
    // rank resolvers plus the hashed frequency profile cover every
    // downstream consumer without a global order (skipped only at tiny
    // `n`, where the sort is free anyway and the routes tie). The
    // `analyze.sort` span is always emitted so traces keep their shape;
    // its `route` field says what actually happened.
    let sort_free = !presorted && selection_profitable(sample.len(), options.buckets);
    let mut sort_span = root.child("analyze.sort");
    sort_span.field("n", sample.len());
    sort_span.field(
        "route",
        if presorted {
            "presorted"
        } else if sort_free {
            "deferred_sort_free"
        } else {
            "sorted"
        },
    );
    if !presorted && !sort_free {
        // Full scans and large samples dominate ANALYZE wall-clock here;
        // sort across cores (serial fallback below the parallel cutoff).
        samplehist_parallel::par_sort_unstable(&mut sample);
    }
    sort_span.finish();

    let mut build_span = root.child("analyze.build");
    build_span.field("buckets", options.buckets);
    build_span.field("route", if is_full { "exact" } else { "scaled_sample" });
    build_span.field("sort_free", sort_free);
    build_span.field("compressed", options.compressed);
    // The sort-free equi-height build partitions `sample` in place; the
    // compressed build only reads it, and every consumer below is
    // order-insensitive, so build order does not matter.
    let compressed = options.compressed.then(|| match (sort_free, is_full) {
        (true, true) => CompressedHistogram::from_unsorted(&sample, options.buckets),
        (true, false) => CompressedHistogram::from_unsorted_sample(&sample, options.buckets, n),
        (false, true) => CompressedHistogram::from_sorted(&sample, options.buckets),
        (false, false) => CompressedHistogram::from_sorted_sample(&sample, options.buckets, n),
    });
    let histogram = match (sort_free, is_full) {
        (true, true) => EquiHeightHistogram::from_unsorted_in_place(&mut sample, options.buckets),
        (true, false) => {
            EquiHeightHistogram::from_unsorted_sample_in_place(&mut sample, options.buckets, n)
        }
        (false, true) => EquiHeightHistogram::from_sorted(&sample, options.buckets),
        (false, false) => EquiHeightHistogram::from_sorted_sample(&sample, options.buckets, n),
    };
    build_span.finish();

    let mut est_span = root.child("analyze.estimate");
    let profile = if sort_free {
        FrequencyProfile::from_unsorted_sample(&sample)
    } else {
        FrequencyProfile::from_sorted_sample(&sample)
    };
    let distinct_in_sample = profile.distinct_in_sample();
    let distinct_estimate =
        if is_full { distinct_in_sample as f64 } else { Gee.estimate(&profile, n) };
    // Density comes from the profile on both routes (bit-identical to the
    // sorted run-length form), so the sort-free path never needs order.
    let density = duplication_density_from_profile(&profile);
    est_span.field("distinct_in_sample", distinct_in_sample);
    est_span.field("distinct_estimate", distinct_estimate);
    est_span.finish();

    root.field("method", method.clone());
    root.field("sample_size", sample.len());

    Ok(ColumnStatistics {
        table: table.name().to_string(),
        column: column.to_string(),
        num_rows: n,
        histogram,
        compressed,
        density,
        distinct_estimate,
        distinct_in_sample,
        sample_size: sample.len() as u64,
        method,
        io,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplehist_storage::Layout;

    fn orders_table(seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        // 20k rows: ids distinct, amounts with 100 duplicates each.
        Table::builder("orders")
            .column_with_blocking("id", (0..20_000).collect(), 100, Layout::Random, &mut rng)
            .column_with_blocking(
                "amount",
                (0..20_000).map(|i| i % 200).collect(),
                100,
                Layout::Random,
                &mut rng,
            )
            .build()
    }

    #[test]
    fn full_scan_is_exact() {
        let t = orders_table(1);
        let mut rng = StdRng::seed_from_u64(2);
        let s =
            analyze(&t, "amount", &AnalyzeOptions::full_scan(50), &mut rng).expect("column exists");
        assert_eq!(s.sample_size, 20_000);
        assert_eq!(s.distinct_estimate, 200.0);
        assert_eq!(s.distinct_in_sample, 200);
        assert_eq!(s.io.pages_read, 200); // 20k rows / 100 per page
        assert_eq!(s.histogram.total(), 20_000);
        assert!(s.method.contains("full scan"));
        // Each value 100 times: density = 99/19999.
        assert!((s.density - 99.0 / 19_999.0).abs() < 1e-12);
    }

    #[test]
    fn row_sample_meters_page_per_tuple() {
        let t = orders_table(3);
        let mut rng = StdRng::seed_from_u64(4);
        let opts = AnalyzeOptions {
            buckets: 20,
            mode: AnalyzeMode::RowSample { rate: 0.05 },
            compressed: false,
        };
        let s = analyze(&t, "id", &opts, &mut rng).expect("column exists");
        assert_eq!(s.sample_size, 1000);
        assert_eq!(s.io.pages_read, 1000, "a page fault per sampled row");
        assert_eq!(s.histogram.total(), 20_000, "counts scaled to the table");
        // All-distinct column: GEE must not underestimate catastrophically.
        assert!(s.distinct_estimate >= 1000.0);
    }

    #[test]
    fn block_sample_meters_pages() {
        let t = orders_table(5);
        let mut rng = StdRng::seed_from_u64(6);
        let opts = AnalyzeOptions {
            buckets: 20,
            mode: AnalyzeMode::BlockSample { rate: 0.1 },
            compressed: false,
        };
        let s = analyze(&t, "amount", &opts, &mut rng).expect("column exists");
        assert_eq!(s.io.pages_read, 20); // 10% of 200 pages
        assert_eq!(s.sample_size, 2000);
        assert!(s.sampling_rate() > 0.09 && s.sampling_rate() < 0.11);
    }

    #[test]
    fn adaptive_mode_runs_and_reports() {
        let t = orders_table(7);
        let mut rng = StdRng::seed_from_u64(8);
        let opts = AnalyzeOptions {
            buckets: 20,
            mode: AnalyzeMode::Adaptive { target_f: 0.2, gamma: 0.05 },
            compressed: false,
        };
        let s = analyze(&t, "amount", &opts, &mut rng).expect("column exists");
        assert!(s.method.contains("adaptive CVB"));
        assert!(s.io.pages_read > 0);
        assert!(s.sample_size > 0);
        assert_eq!(s.histogram.num_buckets(), 20);
    }

    #[test]
    fn sort_free_route_matches_sorted_reference() {
        // 20k rows with 50 buckets clears the selection-profitability bar,
        // so this full scan takes the deferred sort-free route; every
        // statistic must still match one built from the sorted column.
        let t = orders_table(13);
        let mut rng = StdRng::seed_from_u64(14);
        let opts = AnalyzeOptions::full_scan(50).with_compressed();
        let s = analyze(&t, "amount", &opts, &mut rng).expect("column exists");
        let mut sorted: Vec<i64> = (0..20_000).map(|i| i % 200).collect();
        sorted.sort_unstable();
        assert_eq!(s.histogram, EquiHeightHistogram::from_sorted(&sorted, 50));
        assert_eq!(s.compressed, Some(CompressedHistogram::from_sorted(&sorted, 50)));
        let expected = samplehist_core::estimate::duplication_density(&sorted);
        assert_eq!(s.density.to_bits(), expected.to_bits(), "density must be bit-identical");
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = orders_table(9);
        let mut rng = StdRng::seed_from_u64(10);
        let err =
            analyze(&t, "nope", &AnalyzeOptions::full_scan(10), &mut rng).expect_err("must fail");
        assert_eq!(
            err,
            AnalyzeError::UnknownColumn { table: "orders".into(), column: "nope".into() }
        );
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    #[should_panic(expected = "rate must be in (0,1]")]
    fn bad_rate_panics() {
        let t = orders_table(11);
        let mut rng = StdRng::seed_from_u64(12);
        let opts = AnalyzeOptions {
            buckets: 10,
            mode: AnalyzeMode::RowSample { rate: 1.5 },
            compressed: false,
        };
        let _ = analyze(&t, "id", &opts, &mut rng);
    }
}
