//! Per-column estimator-accuracy ledger: the feedback half of the
//! telemetry plane.
//!
//! Execution feeds observed (predicted, actual) cardinality pairs back
//! through [`AccuracyLedger::record`]; the ledger folds each pair's
//! [q-error](qerror) into a mergeable [`QuantileSketch`], counts
//! under- vs over-estimates, and captures the worst-offending predicate.
//! The service layer reads these aggregates to decide whether a column's
//! statistics have rotted *without any writes* — the case the
//! mod-counter staleness path is structurally blind to.
//!
//! Every aggregate here is **merge-order independent** (additive sketch
//! buckets, monotone atomics, and a total-order worst capture with a
//! deterministic predicate-string tiebreak), so the service's `dump()`
//! stays bit-identical regardless of how observations interleave across
//! refresh threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use samplehist_obs::QuantileSketch;

/// The standard q-error: `max(e/t, t/e)` with both sides clamped to at
/// least one row, so zero-row truths and estimates do not blow the
/// ratio up to infinity. Always `>= 1.0` for finite inputs.
pub fn qerror(predicted: f64, actual: f64) -> f64 {
    let e = predicted.max(1.0);
    let t = actual.max(1.0);
    (e / t).max(t / e)
}

/// The single worst (highest q-error) observation a ledger has seen,
/// kept with enough context to print an actionable diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstPredicate {
    /// Rendered predicate text (e.g. `amount <= 100`).
    pub predicate: String,
    /// The optimizer's cardinality estimate.
    pub predicted: f64,
    /// The cardinality execution actually observed.
    pub actual: f64,
    /// `qerror(predicted, actual)`, cached at record time.
    pub qerror: f64,
}

/// Thread-safe accuracy aggregates for one column's statistics epoch.
///
/// Interior mutability throughout: the ledger hangs off the shared
/// [`VersionedStats`](crate::VersionedStats) snapshot, so execution
/// threads record through `&self` while the service reads aggregates
/// concurrently. A fresh ledger is installed with every new statistics
/// epoch, which resets the feedback loop for free.
#[derive(Debug, Default)]
pub struct AccuracyLedger {
    sketch: Mutex<QuantileSketch>,
    observations: AtomicU64,
    underestimates: AtomicU64,
    overestimates: AtomicU64,
    worst: Mutex<Option<WorstPredicate>>,
}

impl AccuracyLedger {
    /// An empty ledger (what each `install` starts from).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one (predicted, actual) pair in and return its q-error.
    ///
    /// Non-finite inputs are counted but not folded into the sketch
    /// (NaN q-errors would poison quantiles); callers on the estimation
    /// path only produce finite values.
    pub fn record(&self, predicate: &str, predicted: f64, actual: f64) -> f64 {
        let q = qerror(predicted, actual);
        self.observations.fetch_add(1, Ordering::Relaxed);
        if predicted < actual {
            self.underestimates.fetch_add(1, Ordering::Relaxed);
        } else if predicted > actual {
            self.overestimates.fetch_add(1, Ordering::Relaxed);
        }
        self.sketch.lock().expect("accuracy sketch poisoned").observe(q);
        let mut worst = self.worst.lock().expect("worst-predicate slot poisoned");
        let replace = match &*worst {
            None => true,
            // Strictly-greater q-error wins; on an exact tie the smaller
            // predicate string wins, so the capture is independent of
            // the order threads record in.
            Some(w) => match q.total_cmp(&w.qerror) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => predicate < w.predicate.as_str(),
                std::cmp::Ordering::Less => false,
            },
        };
        if replace {
            *worst = Some(WorstPredicate {
                predicate: predicate.to_string(),
                predicted,
                actual,
                qerror: q,
            });
        }
        q
    }

    /// Total observations recorded since the last reset.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// Observations where the estimate fell short of the actual.
    pub fn underestimates(&self) -> u64 {
        self.underestimates.load(Ordering::Relaxed)
    }

    /// Observations where the estimate exceeded the actual.
    pub fn overestimates(&self) -> u64 {
        self.overestimates.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the q-error sketch (cheap: fixed-size).
    pub fn sketch(&self) -> QuantileSketch {
        self.sketch.lock().expect("accuracy sketch poisoned").clone()
    }

    /// The worst observation so far, if any.
    pub fn worst(&self) -> Option<WorstPredicate> {
        self.worst.lock().expect("worst-predicate slot poisoned").clone()
    }

    /// Clear every aggregate, re-arming the feedback loop (used after a
    /// Theorem-7 probe passes: the statistics were vindicated, so stale
    /// q-errors must not keep the column permanently suspect).
    pub fn reset(&self) {
        *self.sketch.lock().expect("accuracy sketch poisoned") = QuantileSketch::new();
        self.observations.store(0, Ordering::Relaxed);
        self.underestimates.store(0, Ordering::Relaxed);
        self.overestimates.store(0, Ordering::Relaxed);
        *self.worst.lock().expect("worst-predicate slot poisoned") = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qerror_is_symmetric_and_clamped() {
        assert_eq!(qerror(10.0, 100.0), 10.0);
        assert_eq!(qerror(100.0, 10.0), 10.0);
        assert_eq!(qerror(0.0, 0.0), 1.0, "zero/zero clamps to 1");
        assert_eq!(qerror(0.0, 50.0), 50.0, "zero estimate clamps to one row");
    }

    #[test]
    fn ledger_tracks_direction_counts_and_worst() {
        let ledger = AccuracyLedger::new();
        assert_eq!(ledger.record("a <= 10", 100.0, 100.0), 1.0);
        assert_eq!(ledger.record("a <= 20", 10.0, 100.0), 10.0);
        assert_eq!(ledger.record("a <= 30", 100.0, 25.0), 4.0);
        assert_eq!(ledger.observations(), 3);
        assert_eq!(ledger.underestimates(), 1);
        assert_eq!(ledger.overestimates(), 1);
        let worst = ledger.worst().expect("records present");
        assert_eq!(worst.predicate, "a <= 20");
        assert_eq!(worst.qerror, 10.0);
        assert_eq!(ledger.sketch().count(), 3);
    }

    #[test]
    fn worst_capture_ties_break_on_predicate_text() {
        let ledger = AccuracyLedger::new();
        ledger.record("b = 2", 10.0, 100.0);
        ledger.record("a = 1", 10.0, 100.0);
        ledger.record("c = 3", 10.0, 100.0);
        assert_eq!(ledger.worst().expect("present").predicate, "a = 1");

        // Same observations in any other order capture the same worst.
        let other = AccuracyLedger::new();
        other.record("c = 3", 10.0, 100.0);
        other.record("b = 2", 10.0, 100.0);
        other.record("a = 1", 10.0, 100.0);
        assert_eq!(ledger.worst(), other.worst());
    }

    #[test]
    fn reset_rearms_everything() {
        let ledger = AccuracyLedger::new();
        ledger.record("a <= 1", 1.0, 1000.0);
        ledger.reset();
        assert_eq!(ledger.observations(), 0);
        assert_eq!(ledger.underestimates(), 0);
        assert_eq!(ledger.overestimates(), 0);
        assert!(ledger.worst().is_none());
        assert!(ledger.sketch().is_empty());
    }

    #[test]
    fn concurrent_recording_is_lossless_and_order_independent() {
        let ledger = AccuracyLedger::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let ledger = &ledger;
                s.spawn(move || {
                    for i in 0..100u64 {
                        let actual = 10.0 + (t * 100 + i) as f64;
                        ledger.record(&format!("x = {}", t * 100 + i), 10.0, actual);
                    }
                });
            }
        });
        assert_eq!(ledger.observations(), 400);
        assert_eq!(ledger.sketch().count(), 400);
        // Worst is the largest actual regardless of interleaving.
        assert_eq!(ledger.worst().expect("present").predicate, "x = 399");
    }
}
