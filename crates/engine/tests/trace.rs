//! Trace-shape and determinism tests for `analyze_traced`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use samplehist_engine::{analyze, analyze_traced, AnalyzeMode, AnalyzeOptions, Table};
use samplehist_obs::{Event, MemorySink, Recorder};
use samplehist_storage::Layout;

fn orders_table(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    Table::builder("orders")
        .column_with_blocking(
            "amount",
            (0..20_000).map(|i| i % 200).collect(),
            100,
            Layout::Random,
            &mut rng,
        )
        .build()
}

fn span_end_names(events: &[Event]) -> Vec<&'static str> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::SpanEnd { name, .. } => Some(*name),
            _ => None,
        })
        .collect()
}

#[test]
fn analyze_trace_covers_every_phase() {
    let table = orders_table(1);
    let sink = Arc::new(MemorySink::new());
    let recorder = Recorder::new(sink.clone());
    let mut rng = StdRng::seed_from_u64(2);
    let opts = AnalyzeOptions {
        buckets: 20,
        mode: AnalyzeMode::BlockSample { rate: 0.1 },
        compressed: false,
    };
    analyze_traced(&table, "amount", &opts, &mut rng, &recorder).expect("column exists");

    let events = sink.events();
    let names = span_end_names(&events);
    for expected in
        ["analyze", "analyze.acquire", "analyze.sort", "analyze.build", "analyze.estimate"]
    {
        assert!(names.contains(&expected), "missing {expected:?} span in {names:?}");
    }
    // The block sampler reports its page reads into the same trace.
    assert!(names.contains(&"storage.read"), "sampler I/O missing from {names:?}");
    assert!(
        events.iter().any(
            |e| matches!(e, Event::Counter { name: "storage.pages_read", delta, .. } if *delta > 0)
        ),
        "storage counters missing"
    );

    // Phase spans are children of the analyze root.
    let root_id = events
        .iter()
        .find_map(|e| match e {
            Event::SpanStart { id, name: "analyze", .. } => Some(*id),
            _ => None,
        })
        .expect("root span present");
    for e in &events {
        if let Event::SpanStart { parent, name, .. } = e {
            if name.starts_with("analyze.") {
                assert_eq!(*parent, Some(root_id), "{name} must nest under analyze");
            }
        }
    }
}

#[test]
fn adaptive_analyze_trace_contains_the_cvb_rounds() {
    let table = orders_table(3);
    let sink = Arc::new(MemorySink::new());
    let recorder = Recorder::new(sink.clone());
    let mut rng = StdRng::seed_from_u64(4);
    let opts = AnalyzeOptions {
        buckets: 20,
        mode: AnalyzeMode::Adaptive { target_f: 0.2, gamma: 0.05 },
        compressed: false,
    };
    let stats = analyze_traced(&table, "amount", &opts, &mut rng, &recorder).expect("ok");

    let names = span_end_names(&sink.events());
    assert!(names.contains(&"cvb.run"), "adaptive mode must trace the CVB loop: {names:?}");
    let rounds = names.iter().filter(|n| **n == "cvb.round").count();
    assert!(rounds > 0, "no cvb.round spans recorded");
    assert!(stats.method.contains("adaptive CVB"));
}

/// Tracing must not change the statistics: same table, same seed, with
/// and without a recorder → identical output.
#[test]
fn traced_analyze_matches_untraced_analyze() {
    for mode in [
        AnalyzeMode::FullScan,
        AnalyzeMode::RowSample { rate: 0.05 },
        AnalyzeMode::BlockSample { rate: 0.1 },
        AnalyzeMode::Adaptive { target_f: 0.2, gamma: 0.05 },
    ] {
        let table = orders_table(5);
        let opts = AnalyzeOptions { buckets: 20, mode, compressed: true };
        let mut rng = StdRng::seed_from_u64(6);
        let bare = analyze(&table, "amount", &opts, &mut rng).expect("ok");
        let recorder = Recorder::new(Arc::new(MemorySink::new()));
        let mut rng = StdRng::seed_from_u64(6);
        let traced = analyze_traced(&table, "amount", &opts, &mut rng, &recorder).expect("ok");

        assert_eq!(traced.histogram, bare.histogram, "{mode:?}");
        assert_eq!(traced.compressed, bare.compressed, "{mode:?}");
        assert_eq!(traced.sample_size, bare.sample_size, "{mode:?}");
        assert_eq!(traced.distinct_in_sample, bare.distinct_in_sample, "{mode:?}");
        assert_eq!(traced.distinct_estimate, bare.distinct_estimate, "{mode:?}");
        assert_eq!(traced.density, bare.density, "{mode:?}");
        assert_eq!(traced.io, bare.io, "{mode:?}");
        assert_eq!(traced.method, bare.method, "{mode:?}");
    }
}
