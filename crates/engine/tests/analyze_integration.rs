//! Engine integration tests against generated workloads (the `datagen`
//! crate is a dev-dependency precisely for these).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist_data::{DataSpec, DataSummary};
use samplehist_engine::{
    analyze, estimate_cardinality, estimate_equijoin, AnalyzeMode, AnalyzeOptions, Predicate, Table,
};
use samplehist_storage::Layout;

fn table_from(spec: DataSpec, n: u64, seed: u64) -> (Table, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let values = spec.generate(n, &mut rng).values;
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let t = Table::builder("t")
        .column_with_blocking("c", values, 100, Layout::Random, &mut rng)
        .build();
    (t, sorted)
}

/// Full-scan statistics are exact in every component, whatever the
/// distribution.
#[test]
fn full_scan_statistics_are_exact_across_distributions() {
    let n = 60_000u64;
    for (i, spec) in [
        DataSpec::Zipf { z: 2.0, domain: 10_000 },
        DataSpec::UnifDup { copies: 100 },
        DataSpec::UniformDistinct,
        DataSpec::SelfSimilar { domain: 20_000, h: 0.2 },
    ]
    .iter()
    .enumerate()
    {
        let (t, sorted) = table_from(*spec, n, 100 + i as u64);
        let mut rng = StdRng::seed_from_u64(200 + i as u64);
        let stats =
            analyze(&t, "c", &AnalyzeOptions::full_scan(64), &mut rng).expect("column exists");
        let truth = DataSummary::of_sorted(&sorted);
        assert_eq!(stats.sample_size, n, "{}", spec.label());
        assert_eq!(stats.distinct_estimate, truth.distinct as f64, "{}", spec.label());
        assert!((stats.density - truth.density).abs() < 1e-12, "{}", spec.label());
        assert_eq!(stats.histogram.min_value(), truth.min);
        assert_eq!(stats.histogram.max_value(), truth.max);
    }
}

/// All four ANALYZE modes agree on range selectivity within sampling
/// tolerance on a Zipf column.
#[test]
fn analyze_modes_agree_on_selectivity() {
    let n = 100_000u64;
    let (t, sorted) = table_from(DataSpec::Zipf { z: 1.0, domain: 20_000 }, n, 300);
    let mut rng = StdRng::seed_from_u64(301);
    let preds =
        [Predicate::Le(50), Predicate::Between { low: 100, high: 2_000 }, Predicate::Ge(10_000)];
    for opts in [
        AnalyzeOptions::full_scan(64),
        AnalyzeOptions {
            buckets: 64,
            mode: AnalyzeMode::RowSample { rate: 0.05 },
            compressed: false,
        },
        AnalyzeOptions {
            buckets: 64,
            mode: AnalyzeMode::BlockSample { rate: 0.05 },
            compressed: false,
        },
        AnalyzeOptions {
            buckets: 64,
            mode: AnalyzeMode::Adaptive { target_f: 0.2, gamma: 0.05 },
            compressed: false,
        },
    ] {
        let stats = analyze(&t, "c", &opts, &mut rng).expect("column exists");
        for p in &preds {
            let est = estimate_cardinality(&stats, p).rows;
            let truth = p.true_cardinality(&sorted) as f64;
            assert!(
                (est - truth).abs() <= 0.06 * n as f64,
                "{:?} / {p}: est {est} vs {truth}",
                opts.mode
            );
        }
    }
}

/// Self-join estimate via histograms matches the exact self-join size on
/// uniform-duplication data for sampled statistics too.
#[test]
fn sampled_equijoin_close_to_truth() {
    let n = 80_000u64;
    let (t, sorted) = table_from(DataSpec::UnifDup { copies: 40 }, n, 400);
    let mut rng = StdRng::seed_from_u64(401);
    let opts = AnalyzeOptions {
        buckets: 50,
        mode: AnalyzeMode::BlockSample { rate: 0.2 },
        compressed: false,
    };
    let stats = analyze(&t, "c", &opts, &mut rng).expect("column exists");
    let est = estimate_equijoin(&stats, &stats);
    // Exact self-join: d · copies² = (n/40)·1600 = 40·n.
    let truth = 40.0 * n as f64;
    assert!((est - truth).abs() / truth < 0.35, "self-join est {est} vs truth {truth}");
    drop(sorted);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary predicates, estimates from exact statistics are
    /// within the Theorem-1-style envelope of 2·(n/k) + interpolation
    /// slack of the truth on duplicate-free data.
    #[test]
    fn exact_stats_bounded_error_on_distinct_data(
        a in -1000i64..60_000,
        b in -1000i64..60_000,
    ) {
        let n = 50_000u64;
        let k = 50usize;
        let (t, sorted) = table_from(DataSpec::UniformDistinct, n, 500);
        let mut rng = StdRng::seed_from_u64(501);
        let stats = analyze(&t, "c", &AnalyzeOptions::full_scan(k), &mut rng)
            .expect("column exists");
        let pred = Predicate::Between { low: a.min(b), high: a.max(b) };
        let est = estimate_cardinality(&stats, &pred).rows;
        let truth = pred.true_cardinality(&sorted) as f64;
        let envelope = 2.0 * n as f64 / k as f64 + 2.0;
        prop_assert!((est - truth).abs() <= envelope,
            "{}: est {} vs {} (envelope {})", pred, est, truth, envelope);
    }

    /// Equality estimates are never negative and never exceed the table.
    #[test]
    fn eq_estimates_feasible(v in -10_000i64..10_000) {
        let n = 20_000u64;
        let (t, _sorted) = table_from(DataSpec::Zipf { z: 1.5, domain: 5_000 }, n, 600);
        let mut rng = StdRng::seed_from_u64(601);
        let stats = analyze(&t, "c", &AnalyzeOptions::full_scan(32), &mut rng)
            .expect("column exists");
        let est = estimate_cardinality(&stats, &Predicate::Eq(v));
        prop_assert!(est.rows >= 0.0);
        prop_assert!(est.rows <= n as f64);
        prop_assert!((0.0..=1.0).contains(&est.selectivity));
    }
}
