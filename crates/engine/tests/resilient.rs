//! Fault-injected ANALYZE: graceful degradation, structured errors, and
//! bit-reproducibility of seeded runs (results *and* traces).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use samplehist_engine::{
    analyze, analyze_resilient, analyze_resilient_traced, AnalyzeError, AnalyzeMode,
    AnalyzeOptions, DegradationPolicy, ResilientStatistics, Table,
};
use samplehist_obs::{Event, MemorySink, Recorder};
use samplehist_storage::{
    FaultInjectingStorage, FaultSpec, HeapFile, Layout, RetryPolicy, Retrying,
};

fn orders_table(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    Table::builder("orders")
        .column_with_blocking(
            "amount",
            (0..30_000).map(|i| i % 300).collect(),
            100,
            Layout::Random,
            &mut rng,
        )
        .build()
}

fn amount_file(table: &Table) -> &HeapFile {
    table.column("amount").expect("column exists").file()
}

fn flaky_spec(seed: u64) -> FaultSpec {
    FaultSpec::healthy(seed).with_transient(0.08, 3).with_unreadable(0.04).with_torn(0.02)
}

fn adaptive_opts() -> AnalyzeOptions {
    AnalyzeOptions {
        buckets: 20,
        mode: AnalyzeMode::Adaptive { target_f: 0.25, gamma: 0.05 },
        compressed: false,
    }
}

/// One run of the whole fault-injected pipeline with its own recorder.
fn traced_run(
    table_seed: u64,
    fault_seed: u64,
    rng_seed: u64,
) -> (ResilientStatistics, Vec<Event>) {
    let table = orders_table(table_seed);
    let storage = Retrying::new(
        FaultInjectingStorage::new(amount_file(&table), flaky_spec(fault_seed)),
        RetryPolicy::default(),
    );
    let sink = Arc::new(MemorySink::new());
    let recorder = Recorder::new(sink.clone());
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let result = analyze_resilient_traced(
        "orders",
        "amount",
        &storage,
        &adaptive_opts(),
        &DegradationPolicy::default(),
        &mut rng,
        &recorder,
    )
    .expect("storage is mostly healthy");
    recorder.flush();
    (result, sink.events())
}

/// An event with every wall-clock quantity erased: what must be identical
/// between two runs of the same seeded pipeline.
fn normalize(event: &Event) -> String {
    match event {
        Event::SpanStart { id, parent, name, .. } => format!("start {id} {parent:?} {name}"),
        Event::SpanEnd { id, name, fields, .. } => format!("end {id} {name} {fields:?}"),
        Event::Counter { name, delta, .. } => format!("counter {name} {delta}"),
        Event::Gauge { name, value, .. } => format!("gauge {name} {value}"),
        // Timings observe durations; only their presence is deterministic.
        Event::Timing { name, .. } => format!("timing {name}"),
        Event::Observation { name, label, value, .. } => {
            format!("observation {name} {label} {value}")
        }
    }
}

#[test]
fn seeded_fault_injection_is_bit_reproducible() {
    let (a, trace_a) = traced_run(1, 42, 7);
    let (b, trace_b) = traced_run(1, 42, 7);
    assert_eq!(a, b, "same fault schedule + same RNG seed must reproduce the result exactly");
    assert!(a.degradation.degraded, "the schedule injects real faults");
    let norm_a: Vec<String> = trace_a.iter().map(normalize).collect();
    let norm_b: Vec<String> = trace_b.iter().map(normalize).collect();
    assert_eq!(norm_a, norm_b, "traces must be identical, timestamps aside");

    // And a different fault seed really produces a different run.
    let (c, _) = traced_run(1, 43, 7);
    assert_ne!(a, c, "a different fault schedule must be observable");
}

#[test]
fn resilient_adaptive_on_healthy_storage_matches_plain_analyze() {
    let table = orders_table(11);
    let opts = adaptive_opts();
    let mut rng = StdRng::seed_from_u64(13);
    let plain = analyze(&table, "amount", &opts, &mut rng).expect("column exists");

    let storage = FaultInjectingStorage::new(amount_file(&table), FaultSpec::healthy(5));
    let mut rng = StdRng::seed_from_u64(13);
    let resilient = analyze_resilient(
        "orders",
        "amount",
        &storage,
        &opts,
        &DegradationPolicy::default(),
        &mut rng,
    )
    .expect("healthy storage");

    assert!(!resilient.degradation.degraded);
    assert_eq!(resilient.stats, plain, "no faults ⇒ the degraded path is the plain path");
}

#[test]
fn degraded_run_reports_losses_and_emits_counters() {
    let (result, events) = traced_run(17, 99, 19);
    let report = result.degradation;
    assert!(report.degraded);
    assert!(report.blocks_failed > 0);
    assert!(report.effective_target_f >= 0.25 || !result.stats.method.contains("degraded"));
    assert_eq!(result.stats.histogram.num_buckets(), 20);
    assert_eq!(result.stats.histogram.total(), 30_000, "histogram stays scaled to the relation");

    let counter_total = |wanted: &str| -> u64 {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name, delta, .. } if *name == wanted => Some(*delta),
                _ => None,
            })
            .sum()
    };
    assert_eq!(counter_total("cvb.blocks_failed") as usize, report.blocks_failed);
    assert_eq!(counter_total("analyze.degraded"), 1);
    // The root span records the degradation for trace consumers.
    let root_degraded = events.iter().any(|e| {
        matches!(e, Event::SpanEnd { name: "analyze", fields, .. }
            if fields.iter().any(|(k, v)| *k == "degraded" && *v == samplehist_obs::Value::Bool(true)))
    });
    assert!(root_degraded, "analyze span must carry degraded=true");
}

#[test]
fn unreadable_table_is_a_structured_error_in_every_mode() {
    let table = orders_table(23);
    let dead =
        FaultInjectingStorage::new(amount_file(&table), FaultSpec::healthy(3).with_unreadable(1.0));
    for mode in [
        AnalyzeMode::FullScan,
        AnalyzeMode::BlockSample { rate: 0.2 },
        AnalyzeMode::Adaptive { target_f: 0.25, gamma: 0.05 },
    ] {
        let opts = AnalyzeOptions { buckets: 10, mode, compressed: false };
        let mut rng = StdRng::seed_from_u64(29);
        let err = analyze_resilient(
            "orders",
            "amount",
            &dead,
            &opts,
            &DegradationPolicy::default(),
            &mut rng,
        )
        .expect_err("nothing is readable");
        match err {
            AnalyzeError::TableUnreadable { table, column, blocks_tried } => {
                assert_eq!(table, "orders");
                assert_eq!(column, "amount");
                assert!(blocks_tried > 0);
            }
            other => panic!("wrong error for {mode:?}: {other:?}"),
        }
    }
}

#[test]
fn row_sampling_is_rejected_on_fallible_storage() {
    let table = orders_table(31);
    let storage = FaultInjectingStorage::new(amount_file(&table), FaultSpec::healthy(1));
    let opts = AnalyzeOptions {
        buckets: 10,
        mode: AnalyzeMode::RowSample { rate: 0.1 },
        compressed: false,
    };
    let mut rng = StdRng::seed_from_u64(37);
    let err = analyze_resilient(
        "orders",
        "amount",
        &storage,
        &opts,
        &DegradationPolicy::default(),
        &mut rng,
    )
    .expect_err("row sampling needs tuple addressing");
    assert_eq!(err, AnalyzeError::UnsupportedMode { mode: "row_sample" });
}

#[test]
fn degraded_full_scan_scales_to_the_relation() {
    let table = orders_table(41);
    let file = amount_file(&table);
    let spec = FaultSpec::healthy(8).with_unreadable(0.1);
    let dead_pages = (0..file.num_pages())
        .filter(|&p| spec.fault_of(p) != samplehist_storage::PageFault::None)
        .count();
    assert!(dead_pages > 0, "schedule must kill some of the 300 pages");

    let storage = FaultInjectingStorage::new(file, spec);
    let opts = AnalyzeOptions::full_scan(20);
    let mut rng = StdRng::seed_from_u64(43);
    let result = analyze_resilient(
        "orders",
        "amount",
        &storage,
        &opts,
        &DegradationPolicy::default(),
        &mut rng,
    )
    .expect("most pages survive");
    assert_eq!(result.degradation.blocks_failed, dead_pages);
    assert!(result.stats.method.contains("degraded scan"));
    assert_eq!(result.stats.histogram.total(), 30_000, "lost pages ⇒ scaled like a sample");
    assert_eq!(result.stats.sample_size as usize, (file.num_pages() - dead_pages) * 100);
}
