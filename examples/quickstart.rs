//! Quickstart: how much sampling is enough?
//!
//! Builds the perfect equi-height histogram of a column, asks Corollary 1
//! how many random samples suffice for a 10%-accurate approximation,
//! builds that approximation, and verifies the promise empirically.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;

use samplehist::core::bounds::SamplingPlan;
use samplehist::core::error::max_error_against;
use samplehist::core::histogram::HistogramBuilder;
use samplehist::data::DataSpec;

fn main() {
    let n: u64 = 4_000_000;
    let buckets = 100;
    let f = 0.10; // target: every bucket within 10% of n/k
    let gamma = 0.01; // ... with 99% confidence

    // 1. A (nearly) duplicate-free column — Section 3's setting. (Columns
    //    with heavy duplication need Definition 4's fractional metric;
    //    see the adaptive_block_sampling example for that path.)
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let dataset = DataSpec::UniformRandom { domain: 50 * n }.generate(n, &mut rng);
    println!("data: {} with {} tuples", dataset.label, n);

    // 2. The analytical answer (Corollary 1).
    let plan = SamplingPlan::new(n, buckets, f, gamma);
    println!(
        "Corollary 1: r = {} samples ({:.2}% of the table) guarantee a {}-bucket \
         histogram with ≤{:.0}% bucket error, w.p. ≥ {:.0}%",
        plan.record_sample_size,
        plan.sampling_rate() * 100.0,
        buckets,
        f * 100.0,
        (1.0 - gamma) * 100.0
    );
    // The counter-intuitive headline of Section 3.3: the absolute sample
    // size barely moves as the table grows.
    let plan_100x = SamplingPlan::new(100 * n, buckets, f, gamma);
    println!(
        "(and a 100x bigger table would need only {} — {:.0}% more, not 100x)",
        plan_100x.record_sample_size,
        (plan_100x.record_sample_size as f64 / plan.record_sample_size as f64 - 1.0) * 100.0
    );

    // 3. Build both histograms.
    let builder = HistogramBuilder::new(buckets).target_error(f).confidence(gamma);
    let exact = builder.exact(&dataset.values);
    let approx = builder.sampled(&dataset.values, &mut rng);

    // 4. Verify: realized max error of the sampled histogram.
    let mut sorted = dataset.values.clone();
    sorted.sort_unstable();
    let err = max_error_against(&approx, &sorted);
    println!(
        "realized: Δmax = {:.0} tuples = {:.1}% of the ideal bucket size (target {:.0}%)",
        err.delta_max,
        err.relative_max() * 100.0,
        f * 100.0
    );
    assert!(err.relative_max() <= f, "the bound failed?! (probability ≤ {gamma})");

    // 5. The histograms agree on shape.
    println!(
        "exact histogram:  first separators {:?}",
        &exact.separators()[..5.min(exact.separators().len())]
    );
    println!(
        "approx histogram: first separators {:?}",
        &approx.separators()[..5.min(approx.separators().len())]
    );
    println!("ok: sampling {:.2}% of the data was enough.", plan.sampling_rate() * 100.0);
}
