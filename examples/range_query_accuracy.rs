//! Range-query estimation accuracy: Theorem 3's guarantee, live.
//!
//! Builds an approximate histogram from a sample, measures its max error
//! f, and then fires thousands of random range queries, checking every
//! one against the `(1 + f)·2n/k` envelope and reporting the error
//! distribution — next to a deliberately *mis-summarized* histogram with
//! the same Δavg, whose worst query errors blow straight past the
//! max-bounded histogram's.
//!
//! ```text
//! cargo run --release --example range_query_accuracy
//! ```

use rand::Rng;
use rand::SeedableRng;

use samplehist::core::bounds::range::max_bounded_envelope;
use samplehist::core::error::max_error_against;
use samplehist::core::estimate::evaluate_range_query;
use samplehist::core::histogram::{EquiHeightHistogram, HistogramBuilder};
use samplehist::data::DataSpec;

fn main() {
    let n: u64 = 500_000;
    let k = 100;
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);

    // Skewed data so interpolation actually has work to do — over a wide
    // domain so no single value outweighs a bucket (heavy hitters are the
    // compressed histogram's job, not this example's).
    let dataset = DataSpec::SelfSimilar { domain: 100_000_000, h: 0.3 }.generate(n, &mut rng);
    let mut sorted = dataset.values.clone();
    sorted.sort_unstable();

    // A max-error-bounded histogram from a 4% sample.
    let approx = HistogramBuilder::new(k).sampled_with_size(&dataset.values, 20_000, &mut rng);
    let f = max_error_against(&approx, &sorted).relative_max();
    let envelope = max_bounded_envelope(n, k, 1.0, f).absolute;
    println!(
        "approximate histogram from 4% sample: measured f = {:.3}; Theorem 3 envelope = \
         (1+f)·2n/k = {:.0} tuples",
        f, envelope
    );

    // An adversarial strawman with the same *average* error: its
    // deviation hidden across one ten-bucket region. (Same Δavg a naive
    // quality report would print, radically different worst case —
    // Theorem 1.2.)
    let exact = EquiHeightHistogram::from_sorted(&sorted, k);
    let mut bad_counts: Vec<u64> = exact.counts().to_vec();
    let span = 10usize;
    let per_bucket_shift = ((f * n as f64 / 2.0) / span as f64) as u64; // keeps Δavg ≈ f·n/k
    for i in 0..span {
        let src = k / 4 + i;
        let dst = 3 * k / 4 + i;
        let shift = per_bucket_shift.min(bad_counts[src]);
        bad_counts[src] -= shift;
        bad_counts[dst] += shift;
    }
    let strawman = EquiHeightHistogram::from_parts(
        exact.separators().to_vec(),
        bad_counts,
        exact.min_value(),
        exact.max_value(),
    );

    // Fire random queries at both.
    let queries = 5_000;
    let (mut worst_good, mut worst_bad, mut sum_good) = (0.0f64, 0.0f64, 0.0f64);
    let mut violations = 0u32;
    let span = sorted.last().expect("non-empty") - sorted[0];
    for _ in 0..queries {
        let a = sorted[0] + rng.gen_range(0..=span);
        let b = sorted[0] + rng.gen_range(0..=span);
        let (x, y) = (a.min(b), a.max(b));
        let good = evaluate_range_query(&approx, &sorted, x, y);
        let bad = evaluate_range_query(&strawman, &sorted, x, y);
        worst_good = worst_good.max(good.absolute);
        worst_bad = worst_bad.max(bad.absolute);
        sum_good += good.absolute;
        // Allow the rounding slack of scaled counts on top of the
        // theoretical envelope (cumulative-vs-per-bucket; see the crate
        // tests for the precise statement).
        if good.absolute > 2.0 * envelope {
            violations += 1;
        }
    }
    println!("\nover {queries} random range queries:");
    println!(
        "  max-bounded histogram: mean abs error {:.0}, worst {:.0} (≤ envelope {:.0}; \
         gross violations: {violations})",
        sum_good / queries as f64,
        worst_good,
        envelope
    );
    println!(
        "  same-Δavg strawman:    worst {:.0} — {:.1}x worse, exactly the failure mode \
         Theorem 1 warns about",
        worst_bad,
        worst_bad / worst_good.max(1.0)
    );
    assert_eq!(violations, 0, "Theorem 3 envelope violated");
}
