//! Incrementally maintained histograms — the Gibbons–Matias–Poosala
//! problem setting (the prior work of paper Section 3.4), solved with
//! this crate's reservoir + rebuild machinery.
//!
//! A relation grows by inserts; the maintained histogram must stay
//! accurate without ever re-scanning. We stream three very different
//! insert orders and report error and rebuild counts as the table grows
//! 40× past its initial size.
//!
//! ```text
//! cargo run --release --example incremental_maintenance
//! ```

use rand::seq::SliceRandom;
use rand::SeedableRng;

use samplehist::core::error::max_error_against;
use samplehist::core::histogram::MaintainedHistogram;

fn main() {
    let total = 400_000usize;
    let checkpoints = [20_000usize, 100_000, 400_000];

    for (name, stream) in [
        ("random order", {
            let mut v: Vec<i64> = (0..total as i64).collect();
            v.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));
            v
        }),
        ("ascending (worst case: the future is always to the right)", {
            (0..total as i64).collect()
        }),
        ("sawtooth (drifting hot range)", {
            (0..total as i64).map(|i| (i % 1000) * 1000 + i / 1000).collect()
        }),
    ] {
        println!("=== insert order: {name} ===");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut m = MaintainedHistogram::new(50, 10_000, 0.25, &stream[..1_000], &mut rng);
        let mut inserted = 1_000usize;
        println!("{:>10} {:>10} {:>14} {:>10}", "inserted", "rebuilds", "max error f", "sample");
        for &cp in &checkpoints {
            m.insert_all(&stream[inserted..cp], &mut rng);
            inserted = cp;
            let mut sorted = stream[..inserted].to_vec();
            sorted.sort_unstable();
            let f = max_error_against(&m.histogram(), &sorted).relative_max();
            println!(
                "{:>10} {:>10} {:>14.3} {:>10}",
                inserted,
                m.rebuilds(),
                f,
                m.backing_sample_len()
            );
        }
        println!();
    }
    println!(
        "Every stream keeps its error near the rebuild tolerance (0.25) while \
         touching only the backing sample — no rescans, ever."
    );
}
