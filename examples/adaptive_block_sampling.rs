//! The CVB algorithm in action: watch cross-validation adapt the amount
//! of sampling to the physical clustering of the data.
//!
//! The same Zipf column is stored three ways — random tuple order,
//! partially clustered (20% of each value's duplicates co-located, the
//! paper's Section 7.1 construction), and fully value-sorted. CVB is run
//! on each with identical settings; the per-round trace shows the
//! cross-validation error driving the stopping decision.
//!
//! ```text
//! cargo run --release --example adaptive_block_sampling
//! ```

use rand::SeedableRng;

use samplehist::core::error::fractional_max_error;
use samplehist::core::sampling::{cvb, CvbConfig, Schedule, ValidationMode};
use samplehist::core::BlockSource;
use samplehist::data::DataSpec;
use samplehist::storage::{HeapFile, Layout};

fn main() {
    let n: u64 = 1_000_000;
    let buckets = 200;
    let target_f = 0.15;
    let spec = DataSpec::Zipf { z: 2.0, domain: 100_000 };

    for (name, layout) in [
        ("random", Layout::Random),
        ("partially clustered (20%)", Layout::paper_partial()),
        ("fully clustered (sorted)", Layout::Clustered),
    ] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let dataset = spec.generate(n, &mut rng);
        let file = HeapFile::with_layout(dataset.values, 128, layout, &mut rng);
        let full_sorted = file.sorted_values();

        let config = CvbConfig {
            buckets,
            target_f,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: (file.num_blocks() / 200).max(2) },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        };
        let result = cvb::run(&file, &config, &mut rng);

        println!("=== layout: {name} ===");
        println!(
            "{:>5} {:>10} {:>12} {:>12} {:>16}",
            "round", "new blk", "total blk", "tuples", "cross-val error"
        );
        for r in &result.rounds {
            println!(
                "{:>5} {:>10} {:>12} {:>12} {:>16}",
                r.round,
                r.new_blocks,
                r.total_blocks,
                r.total_tuples,
                r.cross_validation_error.map(|e| format!("{e:.3}")).unwrap_or_else(|| "-".into())
            );
        }
        let true_err = fractional_max_error(
            result.histogram.separators(),
            &result.sample_sorted,
            &full_sorted,
        )
        .max;
        println!(
            "-> {} after {} blocks ({:.1}% of tuples); true error of final histogram: {:.3}\n",
            if result.converged {
                "converged"
            } else if result.exhausted {
                "full scan"
            } else {
                "capped"
            },
            result.blocks_sampled,
            result.sampling_rate(file.num_tuples()) * 100.0,
            true_err
        );
    }
    println!(
        "The stopping rule (Theorem 7) certifies ≤ 2x the target error; note how the \
         clustered layouts force more rounds before validation passes."
    );
}
