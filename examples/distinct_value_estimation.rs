//! Distinct-value estimation: the shoot-out, and the wall.
//!
//! Part 1 runs every estimator in the crate on two very different
//! columns (Zipf Z=2 and Unif/Dup) at a 1% sample, reporting both the
//! classical ratio error and the paper's rel-error.
//!
//! Part 2 demonstrates Theorem 8's impossibility result: a calibrated
//! pair of relations whose samples are usually identical, forcing *any*
//! estimator into large ratio error — while rel-error stays benign,
//! which is exactly why the paper proposes it.
//!
//! ```text
//! cargo run --release --example distinct_value_estimation
//! ```

use rand::SeedableRng;

use samplehist::core::distinct::adversarial::{theorem8_error_floor, HardPair};
use samplehist::core::distinct::error::{abs_rel_error, ratio_error};
use samplehist::core::distinct::{all_estimators, FrequencyProfile};
use samplehist::core::sampling;
use samplehist::data::{distinct_count, DataSpec};

fn main() {
    let n: u64 = 1_000_000;
    let r = (n / 100) as usize; // 1% sample
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    println!("=== Part 1: estimator shoot-out (n = {n}, r = {r}) ===\n");
    for spec in [DataSpec::Zipf { z: 2.0, domain: 100_000 }, DataSpec::UnifDup { copies: 100 }] {
        let dataset = spec.generate(n, &mut rng);
        let mut sorted = dataset.values.clone();
        sorted.sort_unstable();
        let d = distinct_count(&sorted);

        let mut sample = sampling::with_replacement(&dataset.values, r, &mut rng);
        sample.sort_unstable();
        let profile = FrequencyProfile::from_sorted_sample(&sample);

        println!("--- {} (true d = {d}) ---", dataset.label);
        println!("{:<16} {:>12} {:>12} {:>12}", "estimator", "estimate", "ratio err", "|rel err|");
        for est in all_estimators() {
            let e = est.estimate(&profile, n);
            if e.is_finite() {
                println!(
                    "{:<16} {:>12.0} {:>12.2} {:>12.4}",
                    est.name(),
                    e,
                    ratio_error(e, d),
                    abs_rel_error(e, d, n)
                );
            } else {
                println!("{:<16} {:>12} {:>12} {:>12}", est.name(), "unstable", "-", "-");
            }
        }
        println!();
    }

    println!("=== Part 2: the Theorem 8 wall ===\n");
    let gamma = 0.25;
    let pair = HardPair::new(n, r as u64, gamma);
    let floor = theorem8_error_floor(n, r as u64, gamma);
    println!(
        "hard pair: LOW has d = {}, HIGH has d = {}; a {r}-tuple sample of HIGH is \
         all-zero (indistinguishable from LOW) with probability {:.2}",
        pair.d_low(),
        pair.d_high(),
        pair.miss_probability()
    );
    println!("analytic floor: any estimator errs ≥ {floor:.1}x on one of the pair\n");

    let profile = FrequencyProfile::from_pairs(vec![(r as u64, 1)]);
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>12}",
        "estimator", "answer", "ratio vs LOW", "ratio vs HIGH", "|rel| worst"
    );
    for est in all_estimators() {
        let a = est.estimate(&profile, n);
        let (lo, hi) = (ratio_error(a, pair.d_low()), ratio_error(a, pair.d_high()));
        let rel = abs_rel_error(a, pair.d_low(), n).max(abs_rel_error(a, pair.d_high(), n));
        println!(
            "{:<16} {:>12} {:>14.1} {:>14.1} {:>12.5}",
            est.name(),
            if a.is_finite() { format!("{a:.0}") } else { "unstable".into() },
            lo,
            hi,
            rel
        );
    }
    println!(
        "\nEvery ratio column has a big number somewhere (Theorem 8), but the rel-error \
         column stays tiny — the metric an optimizer can actually rely on."
    );
}
