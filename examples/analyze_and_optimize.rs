//! ANALYZE → selectivity → plan choice, end to end.
//!
//! Builds an `orders` table on paged storage, collects statistics four
//! ways (full scan, row sample, block sample, adaptive CVB), compares
//! their I/O bills, then shows how each set of statistics steers the
//! index-seek-vs-scan decision — including the regret when a cheap
//! statistic misleads the optimizer.
//!
//! ```text
//! cargo run --release --example analyze_and_optimize
//! ```

use rand::SeedableRng;

use samplehist::core::BlockSource;
use samplehist::data::DataSpec;
use samplehist::engine::optimizer::{choose_access_path, evaluate_choice, CostModel};
use samplehist::engine::{
    analyze, estimate_cardinality, AnalyzeMode, AnalyzeOptions, Predicate, Table,
};
use samplehist::storage::Layout;

fn main() {
    let n: u64 = 1_000_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // An orders table: `amount` is skewed (many small orders), stored in
    // random tuple order; 64-byte records on 8 KB pages.
    let amounts = DataSpec::SelfSimilar { domain: 100_000, h: 0.2 }.generate(n, &mut rng);
    let table = Table::builder("orders")
        .column("amount", amounts.values.clone(), 64, Layout::Random, &mut rng)
        .build();
    let mut sorted = amounts.values;
    sorted.sort_unstable();

    println!(
        "orders: {n} rows, {} pages\n",
        table.column("amount").expect("exists").file().num_blocks()
    );

    // Collect statistics four ways.
    let modes: Vec<(&str, AnalyzeOptions)> = vec![
        ("FULLSCAN", AnalyzeOptions::full_scan(200)),
        (
            "ROW 1%",
            AnalyzeOptions {
                buckets: 200,
                mode: AnalyzeMode::RowSample { rate: 0.01 },
                compressed: false,
            },
        ),
        (
            "BLOCK 1%",
            AnalyzeOptions {
                buckets: 200,
                mode: AnalyzeMode::BlockSample { rate: 0.01 },
                compressed: false,
            },
        ),
        (
            "ADAPTIVE",
            AnalyzeOptions {
                buckets: 200,
                mode: AnalyzeMode::Adaptive { target_f: 0.15, gamma: 0.05 },
                compressed: false,
            },
        ),
    ];

    let mut all_stats = Vec::new();
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "mode", "pages read", "tuples", "density", "distinct~"
    );
    for (name, opts) in &modes {
        let stats = analyze(&table, "amount", opts, &mut rng).expect("column exists");
        println!(
            "{:<10} {:>12} {:>12} {:>10.4} {:>10.0}",
            name, stats.io.pages_read, stats.io.tuples_read, stats.density, stats.distinct_estimate
        );
        all_stats.push((name.to_string(), stats));
    }

    // Selectivity + plan choice for a few predicates.
    let cost = CostModel::default();
    let pages = table.column("amount").expect("exists").file().num_blocks() as u64;
    println!(
        "\n{:<28} {:>10} | per statistics mode: estimate -> plan (regret)",
        "predicate", "true rows"
    );
    for pred in [
        Predicate::Lt(100),                          // the skewed head: moderately large
        Predicate::Between { low: 0, high: 20_000 }, // huge: scan is right
        Predicate::Gt(99_900),                       // razor-thin tail: seek is right
        Predicate::Eq(50_000),                       // point lookup via density
    ] {
        let truth = pred.true_cardinality(&sorted);
        print!("{:<28} {:>10} |", pred.to_string(), truth);
        for (name, stats) in &all_stats {
            let est = estimate_cardinality(stats, &pred);
            let choice = choose_access_path(&est, pages, &cost);
            let outcome = evaluate_choice(&choice, truth, pages, &cost);
            print!(" {}={:.0}->{:?}({:.1}x)", name, est.rows, outcome.chosen, outcome.regret);
        }
        println!();
    }
    println!("\n(regret 1.0x = the statistics led to the optimal plan)");
}
