//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace builds without network access, so the subset of
//! proptest's API its property tests use is vendored: the [`Strategy`]
//! trait with `prop_map`, range / tuple / `collection::vec` / [`any`]
//! strategies, the [`proptest!`] macro, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **Bounded halving shrinking** instead of upstream's full shrink
//!   tree: on failure the harness greedily applies [`Strategy::shrink_value`]
//!   candidates (vector halving / truncation respecting the size
//!   minimum, integers halving toward their range start) for at most
//!   [`SHRINK_BUDGET`] re-executions, then reports both the original and
//!   the minimized failing inputs and re-raises the minimal panic.
//! * **Deterministic seeding.** Each test derives its RNG stream from a
//!   stable hash of the test name, so failures reproduce exactly across
//!   runs and machines. Set `PROPTEST_SEED` to explore other streams.
//!
//! Neither difference weakens what the workspace's tests assert: every
//! property is still checked against hundreds of random inputs.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Drives one property test: holds the RNG the strategies draw from.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// New runner with a stream derived from the test name (and the
    /// optional `PROPTEST_SEED` environment override).
    pub fn new(test_name: &str) -> Self {
        let base: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0x5EED_CAFE);
        // FNV-1a over the test name keeps streams distinct per test.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { rng: StdRng::seed_from_u64(base ^ h) }
    }

    /// The RNG strategies draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type. `Clone` lets the shrinking harness mutate
    /// copies of a failing input without re-generating it.
    type Value: std::fmt::Debug + Clone;

    /// Produce one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Candidate simplifications of `value`, ordered most-aggressive
    /// first. The default (no candidates) means "not shrinkable";
    /// integer ranges halve toward their start and `collection::vec`
    /// halves its length, so the common strategies minimize well.
    fn shrink_value(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`.
    fn prop_map<U: std::fmt::Debug + Clone, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter generated values; retries until `f` accepts (up to a cap,
    /// then panics — mirrors upstream's rejection limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug + Clone, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.new_value(runner))
    }
    // Mapped values can't be shrunk: the pre-image of `value` under `f`
    // is unknown, so the default empty candidate list applies.
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
    fn shrink_value(&self, value: &S::Value) -> Vec<S::Value> {
        // Shrink via the inner strategy but never propose a candidate
        // the filter would have rejected at generation time.
        self.inner.shrink_value(value).into_iter().filter(|v| (self.f)(v)).collect()
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
    fn shrink_value(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink_value(value)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
            fn shrink_value(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates(self.start, *value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
            fn shrink_value(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates(*self.start(), *value)
            }
        }

        impl IntShrink for $t {
            fn midpoint_with(self, other: $t) -> $t {
                // Overflow-free floor((a + b) / 2); arithmetic shift
                // keeps it correct for signed types too.
                (self & other) + ((self ^ other) >> 1)
            }
            fn pred(self) -> $t {
                self - 1
            }
        }
    )*};
}

/// Integer ops the range shrinkers need, kept private to this crate.
trait IntShrink: Copy + PartialOrd {
    fn midpoint_with(self, other: Self) -> Self;
    fn pred(self) -> Self;
}

/// Candidates between `start` (the range minimum, "simplest") and the
/// failing `value`: the minimum itself, the midpoint, and `value − 1`.
/// Ascending and deduplicated, so the greedy driver tries the biggest
/// jump first; empty once `value` is already minimal.
fn int_shrink_candidates<T: IntShrink>(start: T, value: T) -> Vec<T> {
    if value <= start {
        return Vec::new();
    }
    let mut out = vec![start, start.midpoint_with(value), value.pred()];
    out.dedup_by(|a, b| a == b);
    out
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// f64 ranges generate but do not shrink: "simpler" is ill-defined under
// rounding, and no workspace property keys on float minimality.
impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}
impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$n.new_value(runner),)+)
            }
            fn shrink_value(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$n.shrink_value(&value.$n) {
                        let mut next = value.clone();
                        next.$n = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
    (0 A, 1 B, 2 C, 3 D, 4 E);
}

/// Re-executions of a failing test body the `proptest!` harness spends
/// minimizing the failing input before reporting it.
///
/// Halving makes each pass cheap: a `0..2^B` integer needs ~`B` accepted
/// candidates, a length-`L` vector ~`log2 L` length steps plus per-element
/// work, so 512 re-runs minimize typical workspace inputs with room to
/// spare while still hard-bounding shrink time for expensive bodies.
pub const SHRINK_BUDGET: u32 = 512;

/// Greedy bounded shrinking: starting from a failing `value`, repeatedly
/// move to the first [`Strategy::shrink_value`] candidate on which
/// `failed` still returns `true`, until no candidate fails or `budget`
/// re-executions are spent. Returns the most-shrunk failing value found.
///
/// `failed` must return `true` when the test body FAILS on the input —
/// the driver preserves failure while simplifying, so the result is a
/// (locally) minimal witness of the same property violation.
pub fn shrink_failure<S: Strategy>(
    strategy: &S,
    mut value: S::Value,
    failed: impl Fn(&S::Value) -> bool,
    mut budget: u32,
) -> S::Value {
    loop {
        let mut improved = false;
        for candidate in strategy.shrink_value(&value) {
            if budget == 0 {
                return value;
            }
            budget -= 1;
            if failed(&candidate) {
                value = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return value;
        }
    }
}

/// Ties a check closure's argument type to a strategy's `Value` so the
/// closure body type-checks before its first call site. Used by the
/// [`proptest!`] expansion; not part of the public API surface.
#[doc(hidden)]
pub fn constrain_failure_check<S: Strategy, F: Fn(&S::Value) -> bool>(_strategy: &S, f: F) -> F {
    f
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug + Clone {
    /// Draw one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a `proptest!` body (panics with the formatted message;
/// the macro harness prints the generated inputs of the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` against `config.cases` random
/// cases. On a panic the failing inputs are minimized with up to
/// [`SHRINK_BUDGET`] bounded-halving shrink steps, both the original and
/// the minimal failing case are printed, and the minimal case's panic is
/// re-raised so the assertion message matches the reported inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($bind:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
                // One tuple strategy over all bindings lets the shrink
                // driver treat the whole input as a single value.
                let strategy = ($(($strat),)*);
                let failed = $crate::constrain_failure_check(&strategy, |input| {
                    let ($($bind,)*) = input;
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(let $bind = ::std::clone::Clone::clone($bind);)*
                        $body
                    }))
                    .is_err()
                });
                for case in 0..config.cases {
                    let input = $crate::Strategy::new_value(&strategy, &mut runner);
                    if failed(&input) {
                        eprintln!(
                            "proptest case {}/{} failed in {} with inputs:",
                            case + 1, config.cases, stringify!($name)
                        );
                        {
                            let ($($bind,)*) = &input;
                            $(eprintln!("  {} = {:?}", stringify!($bind), $bind);)*
                        }
                        let minimal = $crate::shrink_failure(
                            &strategy, input, &failed, $crate::SHRINK_BUDGET,
                        );
                        eprintln!("minimal failing case after shrinking:");
                        let ($($bind,)*) = &minimal;
                        $(eprintln!("  {} = {:?}", stringify!($bind), $bind);)*
                        // Re-run the minimal case outside catch_unwind so
                        // the panic the user sees matches the inputs
                        // printed above.
                        $(let $bind = ::std::clone::Clone::clone($bind);)*
                        $body
                        panic!(
                            "proptest: minimal case stopped failing on re-run \
                             (non-deterministic test body?)"
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_test() {
        let mut r1 = TestRunner::new("same-name");
        let mut r2 = TestRunner::new("same-name");
        let s = 0u64..1000;
        let a: Vec<u64> = (0..32).map(|_| s.new_value(&mut r1)).collect();
        let b: Vec<u64> = (0..32).map(|_| s.new_value(&mut r2)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn integer_shrink_candidates_move_toward_start() {
        let s = 10i64..100;
        assert!(s.shrink_value(&10).is_empty(), "range minimum is already minimal");
        assert_eq!(s.shrink_value(&11), vec![10]);
        // start, midpoint, predecessor — ascending so the greedy driver
        // tries the biggest jump first.
        assert_eq!(s.shrink_value(&99), vec![10, 54, 98]);
        let inc = 0u32..=8;
        assert_eq!(inc.shrink_value(&8), vec![0, 4, 7]);
    }

    #[test]
    fn filter_never_proposes_rejected_candidates() {
        let s = (0i64..100).prop_filter("even", |&x| x % 2 == 0);
        assert!(s.shrink_value(&96).iter().all(|&x| x % 2 == 0));
    }

    #[test]
    fn planted_vec_failure_shrinks_to_single_element_witness() {
        // Property under test: "no element is >= 50". The minimal
        // counterexample under bounded halving is exactly `[50]` — one
        // element, decremented to the failure boundary.
        let strategy = (prop::collection::vec(0i64..100, 0..20),);
        let failed = |input: &(Vec<i64>,)| input.0.iter().any(|&x| x >= 50);
        let mut runner = TestRunner::new("planted-witness");
        let input = loop {
            let candidate = strategy.new_value(&mut runner);
            if failed(&candidate) {
                break candidate;
            }
        };
        let minimal = crate::shrink_failure(&strategy, input, failed, crate::SHRINK_BUDGET);
        assert_eq!(minimal.0, vec![50], "expected the exact boundary witness");
    }

    #[test]
    fn shrinking_respects_the_size_minimum() {
        // An always-failing check shrinks everything to its floor: the
        // vector to its minimum length, each element to the range start.
        let s = prop::collection::vec(5i64..100, 3..10);
        let mut runner = TestRunner::new("size-floor");
        let start = s.new_value(&mut runner);
        let minimal = crate::shrink_failure(&s, start, |_| true, crate::SHRINK_BUDGET);
        assert_eq!(minimal, vec![5, 5, 5]);
    }

    #[test]
    fn shrink_failure_is_budget_bounded() {
        // With budget 0 the original failing value is returned untouched.
        let s = 0u64..1000;
        assert_eq!(crate::shrink_failure(&s, 937, |_| true, 0), 937);
    }

    #[test]
    fn map_and_filter_compose() {
        let mut runner = TestRunner::new("compose");
        let even = (0u64..100).prop_map(|x| x * 2);
        let filtered = (0u64..100).prop_filter("nonzero", |&x| x != 0);
        for _ in 0..100 {
            assert_eq!(even.new_value(&mut runner) % 2, 0);
            assert_ne!(filtered.new_value(&mut runner), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_in_range(x in 5u64..50, pair in (0i64..10, 1usize..4)) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(pair.0 < 10 && pair.1 >= 1);
        }

        #[test]
        fn vec_strategy_respects_bounds(v in prop::collection::vec(-5i64..5, 2..20)) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (-5..5).contains(&x)));
        }
    }
}
