//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace builds without network access, so the subset of
//! proptest's API its property tests use is vendored: the [`Strategy`]
//! trait with `prop_map`, range / tuple / `collection::vec` / [`any`]
//! strategies, the [`proptest!`] macro, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (every generated
//!   binding is included in the panic message via `Debug`) but is not
//!   minimized.
//! * **Deterministic seeding.** Each test derives its RNG stream from a
//!   stable hash of the test name, so failures reproduce exactly across
//!   runs and machines. Set `PROPTEST_SEED` to explore other streams.
//!
//! Neither difference weakens what the workspace's tests assert: every
//! property is still checked against hundreds of random inputs.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Drives one property test: holds the RNG the strategies draw from.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// New runner with a stream derived from the test name (and the
    /// optional `PROPTEST_SEED` environment override).
    pub fn new(test_name: &str) -> Self {
        let base: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0x5EED_CAFE);
        // FNV-1a over the test name keeps streams distinct per test.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { rng: StdRng::seed_from_u64(base ^ h) }
    }

    /// The RNG strategies draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Produce one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter generated values; retries until `f` accepts (up to a cap,
    /// then panics — mirrors upstream's rejection limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$n.new_value(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
    (0 A, 1 B, 2 C, 3 D, 4 E);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a `proptest!` body (panics with the formatted message;
/// the macro harness prints the generated inputs of the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` against `config.cases` random
/// cases. On a panic the failing case's inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($bind:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $bind = $crate::Strategy::new_value(&($strat), &mut runner);)*
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(let $bind = &$bind;)*
                        $(let $bind = ::std::clone::Clone::clone($bind);)*
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {}/{} failed in {} with inputs:",
                            case + 1, config.cases, stringify!($name)
                        );
                        $(eprintln!("  {} = {:?}", stringify!($bind), $bind);)*
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_test() {
        let mut r1 = TestRunner::new("same-name");
        let mut r2 = TestRunner::new("same-name");
        let s = 0u64..1000;
        let a: Vec<u64> = (0..32).map(|_| s.new_value(&mut r1)).collect();
        let b: Vec<u64> = (0..32).map(|_| s.new_value(&mut r2)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn map_and_filter_compose() {
        let mut runner = TestRunner::new("compose");
        let even = (0u64..100).prop_map(|x| x * 2);
        let filtered = (0u64..100).prop_filter("nonzero", |&x| x != 0);
        for _ in 0..100 {
            assert_eq!(even.new_value(&mut runner) % 2, 0);
            assert_ne!(filtered.new_value(&mut runner), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_in_range(x in 5u64..50, pair in (0i64..10, 1usize..4)) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(pair.0 < 10 && pair.1 >= 1);
        }

        #[test]
        fn vec_strategy_respects_bounds(v in prop::collection::vec(-5i64..5, 2..20)) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (-5..5).contains(&x)));
        }
    }
}
