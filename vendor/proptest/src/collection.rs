//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRunner};
use rand::Rng;

/// A range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive minimum length.
    pub min: usize,
    /// Inclusive maximum length.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { min: *r.start(), max: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let len = runner.rng().gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }

    fn shrink_value(&self, value: &Self::Value) -> Vec<Self::Value> {
        let len = value.len();
        let min = self.size.min;
        let mut out: Vec<Self::Value> = Vec::new();
        // Length candidates first (biggest simplification): prefix and
        // suffix halves, never shorter than the size minimum, then
        // drop-last. The prefix is skipped when it would equal drop-last
        // (len 2) and both halves when they would be empty duplicates of
        // it (len 1); the suffix at len 2 is drop-first, which drop-last
        // cannot reach.
        if len > min {
            let half = min.max(len / 2);
            if half + 1 < len {
                out.push(value[..half].to_vec());
            }
            if half > 0 && half < len {
                out.push(value[len - half..].to_vec());
            }
            out.push(value[..len - 1].to_vec());
        }
        // Then element-wise candidates from the element strategy, capped
        // so a long vector cannot materialize more clones than the
        // harness's shrink budget could ever try.
        for (i, elem) in value.iter().enumerate() {
            if out.len() >= crate::SHRINK_BUDGET as usize {
                break;
            }
            for cand in self.element.shrink_value(elem) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// Vectors of values from `element`, sized by `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_elements_respect_bounds() {
        let mut runner = TestRunner::new("vec-bounds");
        let s = vec(10i64..20, 3..6);
        for _ in 0..200 {
            let v = s.new_value(&mut runner);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (10..20).contains(&x)));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let mut runner = TestRunner::new("vec-fixed");
        let s = vec(0u64..5, 4usize);
        assert_eq!(s.new_value(&mut runner).len(), 4);
    }
}
