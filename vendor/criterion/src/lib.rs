//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds without crates.io access, so the API subset its
//! `benches/perf_*.rs` targets use is vendored: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simplified from upstream): each benchmark first calibrates
//! how many iterations fit in ~`MIN_SAMPLE_TIME`, then records
//! `sample_size` timed samples of that batch size and reports the median
//! and mean per-iteration time (plus throughput when declared). No
//! statistical regression against saved baselines is performed, but the
//! numbers are stable enough to compare within one run — which is how the
//! workspace's perf benches use them (sort-vs-selection, serial-vs-
//! parallel side by side).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Floor on the time one measured sample should occupy.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);

/// Declared work per benchmark iteration, used for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter (upstream parity).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs closures under timing.
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Time `f`, reporting per-call statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many calls fill MIN_SAMPLE_TIME?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (MIN_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed() / batch as u32);
        }
        samples.sort_unstable();
        self.last_median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        self.last_mean = total / samples.len() as u32;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_throughput(t: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match t {
        Throughput::Elements(n) => {
            let eps = n as f64 / secs;
            if eps >= 1e9 {
                format!("{:.3} Gelem/s", eps / 1e9)
            } else if eps >= 1e6 {
                format!("{:.3} Melem/s", eps / 1e6)
            } else {
                format!("{:.3} Kelem/s", eps / 1e3)
            }
        }
        Throughput::Bytes(n) => {
            let bps = n as f64 / secs;
            if bps >= 1e9 {
                format!("{:.3} GiB/s", bps / (1u64 << 30) as f64)
            } else {
                format!("{:.3} MiB/s", bps / (1u64 << 20) as f64)
            }
        }
    }
}

fn run_one(
    full_id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { sample_size, last_mean: Duration::ZERO, last_median: Duration::ZERO };
    f(&mut b);
    let mut line = format!(
        "{full_id:<60} time: [median {} mean {}]",
        fmt_duration(b.last_median),
        fmt_duration(b.last_mean)
    );
    if let Some(t) = throughput {
        line.push_str(&format!("  thrpt: {}", fmt_throughput(t, b.last_median)));
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Upstream-parity no-op (CLI args are ignored by the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, self.sample_size, None, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size, throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn formatting_units() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_throughput(Throughput::Elements(1_000_000), Duration::from_millis(1))
            .contains("Gelem/s"));
    }
}
