//! Sequence helpers: in-place shuffling and sampling of index sets.

use crate::Rng;

/// Extension methods on slices (the subset of upstream `SliceRandom` the
/// workspace uses).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// One uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// Sampling distinct indices from `0..length`.
pub mod index {
    use crate::Rng;

    /// A set of distinct indices, in the order they were drawn.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Consume into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of indices drawn.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were drawn.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterate the drawn indices.
        pub fn iter(&self) -> std::slice::Iter<'_, usize> {
            self.0.iter()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Draw `amount` distinct indices uniformly from `0..length`, in
    /// draw order (a partial Fisher–Yates; sparse draws use a virtual
    /// swap table so huge `length` costs O(amount) memory).
    ///
    /// # Panics
    /// If `amount > length`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(amount <= length, "cannot sample {amount} distinct indices from 0..{length}");
        if amount == 0 {
            return IndexVec(Vec::new());
        }
        if amount * 4 >= length {
            // Dense: materialize and partially shuffle.
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        } else {
            // Sparse: virtual Fisher–Yates over a swap map.
            let mut swaps: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let vj = *swaps.get(&j).unwrap_or(&j);
                let vi = *swaps.get(&i).unwrap_or(&i);
                swaps.insert(j, vi);
                out.push(vj);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<i64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut back = v.clone();
        back.sort_unstable();
        assert_eq!(back, (0..100).collect::<Vec<i64>>());
        assert_ne!(v, back, "a 100-element shuffle virtually never is the identity");
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for (length, amount) in [(10usize, 10usize), (1000, 30), (50, 20), (7, 0)] {
            let ids = index::sample(&mut rng, length, amount).into_vec();
            assert_eq!(ids.len(), amount);
            assert!(ids.iter().all(|&i| i < length));
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), amount, "indices must be distinct");
        }
    }

    #[test]
    fn index_sample_full_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ids = index::sample(&mut rng, 64, 64).into_vec();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<usize>>());
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn oversample_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = index::sample(&mut rng, 5, 6);
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i64; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
