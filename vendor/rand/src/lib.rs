//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! subset of the `rand 0.8` API actually used here is vendored: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, a deterministic
//! [`rngs::StdRng`], uniform `gen_range` over the integer and float ranges
//! the workspace draws from, and the [`seq`] helpers (`SliceRandom::shuffle`,
//! `index::sample`).
//!
//! The generator is **not** bit-compatible with upstream `rand`'s
//! `StdRng` (ChaCha12); it is xoshiro256** seeded through SplitMix64 —
//! a well-studied, fast generator that is more than adequate for the
//! statistical workloads in this repository. Everything is fully
//! deterministic given a seed, which is the property every experiment and
//! test in the workspace actually relies on.

#![forbid(unsafe_code)]

pub mod seq;

/// The low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the same
    /// convention the `rand` ecosystem uses for `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let chunk = sm.next().to_le_bytes();
            let take = chunk.len().min(bytes.len() - i);
            bytes[i..i + take].copy_from_slice(&chunk[..take]);
            i += take;
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the "standard" distribution for the type
    /// (uniform over the type's full range; `[0, 1)` for floats).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw uniformly from `[0, bound)` without modulo bias (Lemire's
/// multiply-shift; the tiny residual bias at 64 bits is far below
/// anything these workloads can observe).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(uniform_below(rng, span)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(uniform_below(rng, span)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded end point.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1], got {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (see the
    /// crate docs), but with identical determinism guarantees.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // A xoshiro state must not be all zeros.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            Self { s }
        }
    }

    /// Alias kept for API parity with upstream `rand`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism_and_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(0..7usize);
            assert!(x < 7);
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(3u64..=3);
            assert_eq!(z, 3);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5..5usize);
    }
}
