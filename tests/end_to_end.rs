//! Cross-crate integration: data generation → paged storage → adaptive
//! sampling → column statistics → selectivity → plan choice, the whole
//! pipeline the paper's system lived in.

use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist::core::error::max_error_against;
use samplehist::core::BlockSource;
use samplehist::data::{distinct_count, DataSpec, DataSummary};
use samplehist::engine::optimizer::{choose_access_path, evaluate_choice, CostModel};
use samplehist::engine::{
    analyze, estimate_cardinality, AnalyzeMode, AnalyzeOptions, Catalog, Predicate, Table,
};
use samplehist::storage::Layout;

fn build_table(spec: DataSpec, n: u64, layout: Layout, seed: u64) -> (Table, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = spec.generate(n, &mut rng);
    let mut sorted = dataset.values.clone();
    sorted.sort_unstable();
    let table = Table::builder("t").column("c", dataset.values, 64, layout, &mut rng).build();
    (table, sorted)
}

#[test]
fn full_pipeline_zipf_random_layout() {
    let n = 200_000u64;
    let (table, sorted) =
        build_table(DataSpec::Zipf { z: 1.0, domain: 40_000 }, n, Layout::Random, 1);
    let mut rng = StdRng::seed_from_u64(2);

    // Adaptive statistics collection reads less than the full file.
    let opts = AnalyzeOptions {
        buckets: 100,
        mode: AnalyzeMode::Adaptive { target_f: 0.2, gamma: 0.05 },
        compressed: false,
    };
    let stats = analyze(&table, "c", &opts, &mut rng).expect("column exists");
    let pages = table.column("c").expect("exists").file().num_blocks() as u64;
    assert!(
        stats.io.pages_read < pages,
        "adaptive mode should converge before a full scan on a random layout \
         ({} of {pages} pages)",
        stats.io.pages_read
    );

    // The resulting statistics are accurate for range selectivity.
    for pred in
        [Predicate::Le(100), Predicate::Between { low: 10, high: 5_000 }, Predicate::Gt(20_000)]
    {
        let est = estimate_cardinality(&stats, &pred);
        let truth = pred.true_cardinality(&sorted) as f64;
        assert!(
            (est.rows - truth).abs() <= 0.05 * n as f64,
            "{pred}: est {} vs truth {truth}",
            est.rows
        );
    }

    // Distinct estimate is in the feasible range and rel-accurate.
    let d = distinct_count(&sorted);
    assert!(stats.distinct_estimate >= stats.distinct_in_sample as f64);
    assert!(
        (stats.distinct_estimate - d as f64).abs() / n as f64 <= 0.05,
        "distinct: {} vs {d}",
        stats.distinct_estimate
    );

    // Density agrees with ground truth within sampling noise.
    let truth = DataSummary::of_sorted(&sorted);
    assert!(
        (stats.density - truth.density).abs() <= 0.1 * truth.density.max(0.001),
        "density {} vs {}",
        stats.density,
        truth.density
    );
}

#[test]
fn clustered_layout_forces_more_io_than_random() {
    let n = 120_000u64;
    let spec = DataSpec::UnifDup { copies: 50 };
    let opts = AnalyzeOptions {
        buckets: 50,
        mode: AnalyzeMode::Adaptive { target_f: 0.25, gamma: 0.05 },
        compressed: false,
    };

    let mut pages = Vec::new();
    for (layout, seed) in [(Layout::Random, 3), (Layout::Clustered, 4)] {
        let (table, _) = build_table(spec, n, layout, seed);
        let mut rng = StdRng::seed_from_u64(seed + 100);
        let stats = analyze(&table, "c", &opts, &mut rng).expect("exists");
        pages.push(stats.io.pages_read);
    }
    assert!(
        pages[1] > pages[0],
        "clustered ({}) should cost more pages than random ({})",
        pages[1],
        pages[0]
    );
}

#[test]
fn catalog_feeds_plan_choice() {
    let n = 100_000u64;
    let (table, sorted) =
        build_table(DataSpec::UniformRandom { domain: 10 * n }, n, Layout::Random, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let mut catalog = Catalog::new();
    catalog
        .analyze_and_store(&table, "c", &AnalyzeOptions::full_scan(100), &mut rng)
        .expect("exists");

    let stats = catalog.get("t", "c").expect("stored");
    let pages = table.column("c").expect("exists").file().num_blocks() as u64;
    let cost = CostModel::default();

    // A selective predicate must seek; an unselective one must scan; both
    // with regret 1 when statistics are exact.
    let selective = Predicate::Le(sorted[40]); // ~40 rows
    let broad = Predicate::Ge(sorted[(n / 2) as usize]); // ~half the table
    for (pred, expect_seek) in [(selective, true), (broad, false)] {
        let est = estimate_cardinality(stats, &pred);
        let choice = choose_access_path(&est, pages, &cost);
        let outcome = evaluate_choice(&choice, pred.true_cardinality(&sorted), pages, &cost);
        assert_eq!(
            matches!(choice.path, samplehist::engine::optimizer::AccessPath::IndexSeek),
            expect_seek,
            "{pred}"
        );
        assert!(outcome.regret < 1.3, "{pred}: regret {}", outcome.regret);
    }
}

#[test]
fn block_sampled_histogram_matches_record_sampled_quality_on_random_layout() {
    // Section 4.1 scenario (a): with random placement, block sampling is
    // as good as record sampling at equal tuple counts.
    let n = 150_000u64;
    let (table, sorted) =
        build_table(DataSpec::UniformRandom { domain: n * 20 }, n, Layout::Random, 7);
    let mut rng = StdRng::seed_from_u64(8);

    let block = analyze(
        &table,
        "c",
        &AnalyzeOptions {
            buckets: 50,
            mode: AnalyzeMode::BlockSample { rate: 0.1 },
            compressed: false,
        },
        &mut rng,
    )
    .expect("exists");
    let row = analyze(
        &table,
        "c",
        &AnalyzeOptions {
            buckets: 50,
            mode: AnalyzeMode::RowSample { rate: 0.1 },
            compressed: false,
        },
        &mut rng,
    )
    .expect("exists");

    let f_block = max_error_against(&block.histogram, &sorted).relative_max();
    let f_row = max_error_against(&row.histogram, &sorted).relative_max();
    assert!(f_block < 2.5 * f_row + 0.05, "block f={f_block}, row f={f_row}");

    // ... while costing two orders of magnitude fewer page reads.
    assert!(block.io.pages_read * 50 < row.io.pages_read);
}
