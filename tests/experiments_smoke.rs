//! Smoke test: the entire evaluation harness runs end to end at a tiny
//! scale and produces structurally sane tables for every paper artifact.

use samplehist_bench::{experiments, Scale};

#[test]
fn every_experiment_produces_tables() {
    let scale = Scale { n: 60_000, trials: 1, seed: 123, full: false };
    let all = experiments::run_all(&scale);
    assert_eq!(all.len(), 12, "one entry per paper artifact group + thm7 + ablations");

    let mut seen = std::collections::HashSet::new();
    for (id, tables) in &all {
        assert!(seen.insert(*id), "duplicate experiment id {id}");
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in tables {
            assert!(!t.title.is_empty());
            assert!(!t.columns.is_empty());
            assert!(!t.rows.is_empty(), "{id}: empty table {:?}", t.title);
            for row in &t.rows {
                assert_eq!(row.len(), t.columns.len(), "{id}: ragged row");
            }
            // Render must not panic and must contain the title.
            assert!(t.render().contains(&t.title));
        }
    }
}

#[test]
fn experiments_are_deterministic_given_a_seed() {
    let scale = Scale { n: 50_000, trials: 1, seed: 7, full: false };
    let a = experiments::ex1::run(&scale);
    let b = experiments::ex1::run(&scale);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.rows, y.rows);
    }

    let a = experiments::fig9_12::run(&scale);
    let b = experiments::fig9_12::run(&scale);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.rows, y.rows, "stochastic experiment not seed-stable");
    }
}
