//! The distinct-value estimator shoot-out, in the style of the Haas et
//! al. (VLDB 1995) study the paper cites: a battery of distribution
//! shapes × sampling rates, with the paper's Section 6 claims asserted
//! across the whole grid rather than at single points.

use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist::core::distinct::error::{abs_rel_error, ratio_error};
use samplehist::core::distinct::{
    all_estimators, DistinctEstimator, FrequencyProfile, Gee, HybridGee, ScaleUp,
};
use samplehist::core::sampling;
use samplehist::data::{distinct_count, DataSpec};

const N: u64 = 150_000;
const RATES: [f64; 3] = [0.01, 0.05, 0.2];

fn battery() -> Vec<DataSpec> {
    vec![
        DataSpec::Zipf { z: 0.5, domain: 30_000 },
        DataSpec::Zipf { z: 1.0, domain: 30_000 },
        DataSpec::Zipf { z: 2.0, domain: 30_000 },
        DataSpec::Zipf { z: 4.0, domain: 30_000 },
        DataSpec::UnifDup { copies: 10 },
        DataSpec::UnifDup { copies: 100 },
        DataSpec::UnifDup { copies: 1000 },
        DataSpec::UniformRandom { domain: 20_000 },
        DataSpec::SelfSimilar { domain: 30_000, h: 0.2 },
        DataSpec::Normal { mean: 0.0, std_dev: 3_000.0 },
    ]
}

struct Case {
    label: String,
    d: u64,
    profile: FrequencyProfile,
}

fn cases() -> Vec<(f64, Case)> {
    let mut out = Vec::new();
    for (i, spec) in battery().into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1000 + i as u64);
        let mut data = spec.generate(N, &mut rng).values;
        data.sort_unstable();
        let d = distinct_count(&data);
        for &rate in &RATES {
            let r = (N as f64 * rate) as usize;
            let mut sample = sampling::with_replacement(&data, r, &mut rng);
            sample.sort_unstable();
            out.push((
                rate,
                Case {
                    label: format!("{} @ {:.0}%", spec.label(), rate * 100.0),
                    d,
                    profile: FrequencyProfile::from_sorted_sample(&sample),
                },
            ));
        }
    }
    out
}

/// Section 6.2's headline, asserted over the whole battery: GEE's
/// rel-error is small on every distribution × rate combination.
#[test]
fn gee_rel_error_small_everywhere() {
    for (_, case) in cases() {
        let e = Gee.estimate(&case.profile, N);
        let rel = abs_rel_error(e, case.d, N);
        assert!(rel < 0.2, "{}: GEE rel-error {rel}", case.label);
    }
}

/// GEE's worst-case design goal: its ratio error never exceeds √(n/r)
/// (the quantity it is optimized against), on any battery member.
#[test]
fn gee_ratio_error_within_design_bound() {
    for (rate, case) in cases() {
        let e = Gee.estimate(&case.profile, N);
        let bound = (1.0 / rate).sqrt() + 1.0; // sqrt(n/r), +1 slack for clamping
        let err = ratio_error(e, case.d);
        assert!(err <= bound, "{}: GEE ratio error {err} > design bound {bound}", case.label);
    }
}

/// The naive scale-up has unbounded error on duplicated data — the reason
/// nontrivial estimators exist. Verify it actually fails somewhere GEE
/// doesn't.
#[test]
fn scale_up_fails_where_gee_does_not() {
    let mut scale_up_worst = 1.0f64;
    let mut gee_worst = 1.0f64;
    for (_, case) in cases() {
        scale_up_worst =
            scale_up_worst.max(ratio_error(ScaleUp.estimate(&case.profile, N), case.d));
        gee_worst = gee_worst.max(ratio_error(Gee.estimate(&case.profile, N), case.d));
    }
    assert!(
        scale_up_worst > 3.0 * gee_worst,
        "scale-up worst {scale_up_worst} vs GEE worst {gee_worst}"
    );
}

/// The hybrid never loses to plain GEE by much, and wins decisively
/// somewhere (the Unif/Dup rows).
#[test]
fn hybrid_dominates_gee_overall() {
    let hybrid = HybridGee::default();
    let mut hybrid_beats = 0usize;
    for (_, case) in cases() {
        let e_g = ratio_error(Gee.estimate(&case.profile, N), case.d);
        let e_h = ratio_error(hybrid.estimate(&case.profile, N), case.d);
        assert!(e_h <= e_g * 1.7 + 0.2, "{}: hybrid {e_h} much worse than GEE {e_g}", case.label);
        if e_h < e_g * 0.8 {
            hybrid_beats += 1;
        }
    }
    assert!(hybrid_beats >= 2, "hybrid won decisively only {hybrid_beats} times");
}

/// Estimates improve (weakly) with the sampling rate for every estimator,
/// distribution by distribution — measured as the mean ratio error at 1%
/// vs 20% across the battery.
#[test]
fn more_sampling_helps_on_average() {
    let all = cases();
    for est in all_estimators() {
        if est.name() == "Goodman" {
            continue; // unstable by design
        }
        if est.name() == "ChaoLee" {
            // Known pathology: on extreme skew (Zipf Z=4) the Chao–Lee
            // CV correction grows with the sample and overshoots harder
            // at higher rates — one of the behaviors that motivated the
            // paper's worst-case-first approach.
            continue;
        }
        let mean_err = |rate: f64| -> f64 {
            let mut acc = 0.0;
            let mut count = 0;
            for (r, case) in &all {
                if (r - rate).abs() < 1e-12 {
                    acc += ratio_error(est.estimate(&case.profile, N), case.d).min(100.0);
                    count += 1;
                }
            }
            acc / count as f64
        };
        let low = mean_err(0.01);
        let high = mean_err(0.2);
        assert!(
            high <= low + 0.05,
            "{}: mean ratio error grew with rate ({low} -> {high})",
            est.name()
        );
    }
}

/// Sanity for the battery itself: it spans three orders of magnitude in
/// true distinct count and includes both near-distinct and heavy-dup
/// shapes.
#[test]
fn battery_is_diverse() {
    let all = cases();
    let ds: Vec<u64> = all.iter().map(|(_, c)| c.d).collect();
    let max = *ds.iter().max().expect("non-empty");
    let min = *ds.iter().min().expect("non-empty");
    assert!(max / min >= 100, "battery d range {min}..{max} too narrow");
}
