//! Statistical validation of the paper's analytical results, run across
//! distributions and sampling modes. Fixed seeds; tolerances chosen so a
//! correct implementation passes with enormous margin.

use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist::core::bounds::{corollary1_sample_size, SamplingPlan};
use samplehist::core::distinct::error::abs_rel_error;
use samplehist::core::distinct::{DistinctEstimator, FrequencyProfile, Gee};
use samplehist::core::error::{delta_separation, fractional_max_error, max_error_against};
use samplehist::core::histogram::{EquiHeightHistogram, HistogramBuilder};
use samplehist::core::sampling;
use samplehist::data::{distinct_count, DataSpec};

/// Theorem 4 / Corollary 1: a Corollary-1-sized sample achieves the
/// promised max error on duplicate-free data, whatever the value
/// distribution — and does so with margin (the bound is conservative).
#[test]
fn corollary1_holds_across_distributions() {
    let n = 300_000u64;
    let k = 40usize;
    let f = 0.2f64;
    let gamma = 0.05f64;
    let r = corollary1_sample_size(k, f, n, gamma).ceil() as usize;
    assert!(r < n as usize, "test needs a non-degenerate sample size");

    // Distinct values with three very different *orderings/spacings*: the
    // guarantee is distribution-free.
    let make = |style: u8, rng: &mut StdRng| -> Vec<i64> {
        match style {
            0 => (0..n as i64).collect(),
            1 => (0..n as i64).map(|i| i * i).collect(),
            _ => {
                // Random distinct values over a huge domain.
                sampling::without_replacement(
                    &(0..4 * n as i64).collect::<Vec<_>>(),
                    n as usize,
                    rng,
                )
            }
        }
    };

    for style in 0..3u8 {
        let mut rng = StdRng::seed_from_u64(style as u64 + 10);
        let mut data = make(style, &mut rng);
        data.sort_unstable();
        let sample = sampling::with_replacement(&data, r, &mut rng);
        let h = EquiHeightHistogram::from_unsorted_sample(sample, k, n);
        let realized = max_error_against(&h, &data).relative_max();
        assert!(
            realized <= f,
            "style {style}: realized f = {realized} > target {f} (probability ≤ γ)"
        );
    }
}

/// Section 3.1's claim that the with/without-replacement distinction does
/// not matter: both sampling modes deliver comparable realized error.
#[test]
fn with_and_without_replacement_agree() {
    let n = 200_000u64;
    let data: Vec<i64> = (0..n as i64).collect();
    let k = 50;
    let builder = HistogramBuilder::new(k).target_error(0.25).confidence(0.05);

    let mut errs = [0.0f64; 2];
    for trial in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(trial + 20);
        let with = builder.sampled(&data, &mut rng);
        let without = builder.without_replacement().sampled(&data, &mut rng);
        errs[0] += max_error_against(&with, &data).relative_max();
        errs[1] += max_error_against(&without, &data).relative_max();
    }
    let ratio = (errs[0] / errs[1]).max(errs[1] / errs[0]);
    assert!(ratio < 2.0, "with {} vs without {}", errs[0], errs[1]);
}

/// δ-separation (Definition 2) is never smaller than the count deviation
/// it strengthens, and shrinks as the sample grows (Theorem 5 direction).
#[test]
fn separation_dominates_and_shrinks() {
    let n = 100_000u64;
    let data: Vec<i64> = (0..n as i64).collect();
    let k = 20;
    let perfect = EquiHeightHistogram::from_sorted(&data, k);

    let mut rng = StdRng::seed_from_u64(30);
    let mut previous = u64::MAX;
    for r in [1_000usize, 10_000, 100_000] {
        let sample = sampling::with_replacement(&data, r, &mut rng);
        let h = EquiHeightHistogram::from_unsorted_sample(sample, k, n);
        let sep = delta_separation(&h, &perfect, &data).max;
        let dev = max_error_against(&h, &data).delta_max;
        assert!(sep as f64 + 1e-9 >= dev, "r={r}: separation {sep} < deviation {dev}");
        assert!(sep <= previous, "separation should shrink with r (was {previous}, now {sep})");
        previous = sep;
    }
}

/// The fractional metric (Definition 4) agrees with Definition 1 on
/// duplicate-free data for *sampled* histograms too, and stays finite and
/// meaningful on heavily duplicated data where Definition 1 breaks down.
#[test]
fn fractional_metric_generalizes_definition_1() {
    let n = 120_000u64;
    let mut rng = StdRng::seed_from_u64(40);

    // Duplicate-free: the two metrics coincide when the sample is the
    // whole dataset (so reference gaps are exactly 1/k).
    let distinct: Vec<i64> = (0..n as i64).collect();
    let h = EquiHeightHistogram::from_sorted(&distinct, 30);
    let skewed: Vec<i64> = (0..n as i64).map(|i| i / 3).collect();
    let f_def4 = fractional_max_error(h.separators(), &distinct, &skewed).max;
    let f_def1 = max_error_against(&h, &skewed).relative_max();
    assert!((f_def4 - f_def1).abs() < 1e-9);

    // Heavy duplicates: Zipf(3) has one value with ~83% of the mass.
    let dup = DataSpec::Zipf { z: 3.0, domain: 10_000 }.generate(n, &mut rng);
    let mut sorted = dup.values;
    sorted.sort_unstable();
    let sample = sampling::with_replacement(&sorted, 30_000, &mut rng);
    let hs = EquiHeightHistogram::from_unsorted_sample(sample.clone(), 30, n);
    let mut sample_sorted = sample;
    sample_sorted.sort_unstable();
    let f_prime = fractional_max_error(hs.separators(), &sample_sorted, &sorted).max;
    assert!(f_prime.is_finite());
    assert!(f_prime < 0.5, "30k samples of a 120k multiset: f' = {f_prime}");
}

/// GEE's rel-error stays small across distribution shapes — the paper's
/// Section 6.2 promise, checked beyond the two distributions of the
/// figures.
#[test]
fn gee_rel_error_small_across_shapes() {
    let n = 200_000u64;
    let specs = [
        DataSpec::Zipf { z: 2.0, domain: 40_000 },
        DataSpec::UnifDup { copies: 100 },
        DataSpec::SelfSimilar { domain: 50_000, h: 0.2 },
        DataSpec::Normal { mean: 0.0, std_dev: 20_000.0 },
        DataSpec::UniformRandom { domain: 30_000 },
    ];
    for (i, spec) in specs.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(50 + i as u64);
        let mut data = spec.generate(n, &mut rng).values;
        data.sort_unstable();
        let d = distinct_count(&data);
        let mut sample = sampling::with_replacement(&data, (n / 20) as usize, &mut rng);
        sample.sort_unstable();
        let profile = FrequencyProfile::from_sorted_sample(&sample);
        let estimate = Gee.estimate(&profile, n);
        let rel = abs_rel_error(estimate, d, n);
        // Columns where d is a large fraction of n (the wide Normal here,
        // d/n ≈ 0.37) are the Theorem 8 hard regime: GEE's √(n/r) hedge
        // leaves rel-error up to ~f1·(√(n/r)−1)/n ≈ 0.2 at a 5% sample.
        // Everything milder sits well under 0.12.
        assert!(rel < 0.25, "{}: rel-error {rel} (d = {d}, est = {estimate})", spec.label());
    }
}

/// The SamplingPlan's "sampling is pointless" verdict is consistent with
/// what actually happens: when the plan says sample, the sampled
/// histogram meets the target.
#[test]
fn plan_verdicts_are_actionable() {
    let n = 250_000u64;
    let plan = SamplingPlan::new(n, 30, 0.25, 0.05);
    assert!(!plan.sampling_is_pointless());

    let data: Vec<i64> = (0..n as i64).collect();
    let mut rng = StdRng::seed_from_u64(60);
    let sample = sampling::with_replacement(&data, plan.record_sample_size as usize, &mut rng);
    let h = EquiHeightHistogram::from_unsorted_sample(sample, 30, n);
    assert!(max_error_against(&h, &data).relative_max() <= 0.25);
}
