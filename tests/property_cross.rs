//! Cross-crate property tests: invariants that must hold for *any* data,
//! any bucket count, any sampling parameters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist::core::distinct::{all_estimators, FrequencyProfile};
use samplehist::core::error::{fractional_max_error, max_error_against, summarize_counts};
use samplehist::core::estimate::{true_range_count, RangeEstimator};
use samplehist::core::histogram::{bucket_counts, CompressedHistogram, EquiHeightHistogram};
use samplehist::core::sampling::{self, cvb, CvbConfig, Schedule, SliceBlocks, ValidationMode};
use samplehist::core::BlockSource;

fn arbitrary_multiset() -> impl Strategy<Value = Vec<i64>> {
    // Mixtures of runs and singles, size 1..400, values in a small domain
    // so duplicates are common.
    prop::collection::vec((-50i64..50, 1usize..8), 1..60).prop_map(|runs| {
        let mut v: Vec<i64> =
            runs.into_iter().flat_map(|(val, c)| std::iter::repeat(val).take(c)).collect();
        v.sort_unstable();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram structural invariants for any multiset and bucket count.
    #[test]
    fn histogram_invariants(data in arbitrary_multiset(), k in 1usize..20) {
        let h = EquiHeightHistogram::from_sorted(&data, k);
        prop_assert_eq!(h.num_buckets(), k);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), data.len() as u64);
        prop_assert!(h.separators().windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(h.separators().iter().all(|s| data.binary_search(s).is_ok()),
            "separators are data values");
        // bucket_of is consistent with the counts.
        let recounted = bucket_counts(&data, h.separators());
        prop_assert_eq!(recounted.as_slice(), h.counts());
    }

    /// Theorem 2 for arbitrary count vectors: Δavg ≤ Δvar ≤ Δmax.
    #[test]
    fn metric_ordering(counts in prop::collection::vec(0u64..1000, 1..30)) {
        let total: u64 = counts.iter().sum();
        let s = summarize_counts(&counts, total);
        prop_assert!(s.delta_avg <= s.delta_var + 1e-9);
        prop_assert!(s.delta_var <= s.delta_max + 1e-9);
    }

    /// Sampled histograms: scaled counts always sum to n; recounting them
    /// against the population never panics and sums to n too.
    #[test]
    fn sampled_histogram_count_conservation(
        data in arbitrary_multiset(),
        k in 1usize..12,
        scale_up in 1u64..50,
    ) {
        let n = data.len() as u64 * scale_up;
        let h = EquiHeightHistogram::from_sorted_sample(&data, k, n);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), n);
        prop_assert_eq!(h.total(), n);
    }

    /// The range estimator is monotone in the query's upper bound and
    /// consistent at the extremes.
    #[test]
    fn range_estimator_monotone(data in arbitrary_multiset(), k in 1usize..10) {
        let h = EquiHeightHistogram::from_sorted(&data, k);
        let est = RangeEstimator::new(&h);
        let mut prev = 0.0f64;
        for t in -60..60i64 {
            let cur = est.estimate_le(t);
            prop_assert!(cur + 1e-9 >= prev, "estimate_le not monotone at {}", t);
            prop_assert!(cur >= -1e-9 && cur <= data.len() as f64 + 1e-9);
            prev = cur;
        }
        prop_assert_eq!(est.estimate_le(100), data.len() as f64);
        // Whole-domain query is exact.
        let whole = est.estimate_range(i64::MIN, i64::MAX);
        prop_assert!((whole - data.len() as f64).abs() < 1e-9);
        prop_assert_eq!(true_range_count(&data, i64::MIN, i64::MAX), data.len() as u64);
    }

    /// Compressed histograms conserve mass: heavy counts + residual total
    /// = n, and whole-domain range estimates are exact.
    #[test]
    fn compressed_histogram_conserves_mass(data in arbitrary_multiset(), k in 1usize..10) {
        let c = CompressedHistogram::from_sorted(&data, k);
        let heavy: u64 = c.high_frequency_values().iter().map(|&(_, cnt)| cnt).sum();
        let light = c.residual().map_or(0, |h| h.total());
        prop_assert_eq!(heavy + light, data.len() as u64);
        prop_assert!(c.buckets_used() <= k.max(1));
        let whole = c.estimate_range(i64::MIN, i64::MAX);
        prop_assert!((whole - data.len() as f64).abs() < 1e-9);
        // Equality on a heavy value is exact.
        for &(v, cnt) in c.high_frequency_values() {
            prop_assert_eq!(c.estimate_eq(v), cnt as f64);
        }
    }

    /// The fractional metric is symmetric-ish in spirit: zero iff the
    /// distributions agree on every gap; always finite; zero when
    /// observed == reference.
    #[test]
    fn fractional_metric_sanity(data in arbitrary_multiset(), k in 1usize..10) {
        let h = EquiHeightHistogram::from_sorted(&data, k);
        let rep = fractional_max_error(h.separators(), &data, &data);
        prop_assert_eq!(rep.max, 0.0);
        prop_assert!(rep.gaps.iter().all(|g| g.reference_fraction >= -1e-12));
        let total_ref: f64 = rep.gaps.iter().map(|g| g.reference_fraction).sum();
        prop_assert!((total_ref - 1.0).abs() < 1e-9, "gap masses sum to 1");
    }

    /// Every distinct estimator stays in [d_sample, n] (Goodman excepted,
    /// by design) for arbitrary profiles.
    #[test]
    fn estimators_feasible(data in arbitrary_multiset(), scale_up in 1u64..100) {
        let n = data.len() as u64 * scale_up;
        let p = FrequencyProfile::from_sorted_sample(&data);
        for est in all_estimators() {
            if est.name() == "Goodman" { continue; }
            let e = est.estimate(&p, n);
            prop_assert!(e.is_finite(), "{} not finite", est.name());
            prop_assert!(e >= p.distinct_in_sample() as f64 - 1e-9, "{} below floor", est.name());
            prop_assert!(e <= n as f64 + 1e-9, "{} above n", est.name());
        }
    }

    /// CVB terminates, respects its block cap, and its histogram is a
    /// valid summary of the whole column, for arbitrary data and block
    /// sizes.
    #[test]
    fn cvb_always_terminates_validly(
        data in arbitrary_multiset(),
        block_size in 1usize..20,
        seed in 0u64..1000,
        cap_pct in 10u32..=100,
    ) {
        let src = SliceBlocks::new(&data, block_size);
        let config = CvbConfig {
            buckets: 5,
            target_f: 0.3,
            gamma: 0.1,
            schedule: Schedule::Doubling { initial_blocks: 1 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: cap_pct as f64 / 100.0,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let result = cvb::run(&src, &config, &mut rng);
        prop_assert!(result.blocks_sampled <= src.num_blocks());
        let cap = ((src.num_blocks() as f64 * config.max_block_fraction).ceil() as usize).max(1);
        prop_assert!(result.blocks_sampled <= cap + 1);
        prop_assert_eq!(result.histogram.total(), data.len() as u64);
        prop_assert_eq!(result.tuples_sampled as usize, result.sample_sorted.len());
        prop_assert!(result.sample_sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Record sampling never invents values.
    #[test]
    fn samples_are_subsets(data in arbitrary_multiset(), r in 1usize..100, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sampling::with_replacement(&data, r, &mut rng);
        prop_assert!(s.iter().all(|v| data.binary_search(v).is_ok()));
        let s2 = sampling::without_replacement(&data, r.min(data.len()), &mut rng);
        prop_assert!(s2.iter().all(|v| data.binary_search(v).is_ok()));
    }

    /// The deviation of a perfect histogram on duplicate-free data is
    /// less than one bucket unit — it only exists at all because k may
    /// not divide n.
    #[test]
    fn perfect_histogram_near_zero_deviation(n in 1usize..500, k in 1usize..20) {
        let data: Vec<i64> = (0..n as i64).collect();
        let h = EquiHeightHistogram::from_sorted(&data, k);
        let err = max_error_against(&h, &data);
        prop_assert!(err.delta_max < 1.0, "Δmax = {}", err.delta_max);
    }
}
