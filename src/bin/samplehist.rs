//! `samplehist` — a command-line front end for the library.
//!
//! ```text
//! samplehist plan     --n 10000000 --k 600 --f 0.1 [--gamma 0.01]
//! samplehist analyze  --n 1000000 --dist zipf:2 [--buckets 200]
//!                     [--mode fullscan|row:0.01|block:0.01|adaptive:0.1]
//!                     [--layout random|clustered|partial] [--compressed]
//! samplehist distinct --n 1000000 --dist unifdup:100 [--rate 0.01]
//! samplehist floor    --n 1000000 --r 20000 [--gamma 0.5]
//! ```
//!
//! Everything runs on synthetic data generated in memory — the tool is a
//! calculator and demonstrator for the paper's results, not a database
//! client. Argument parsing is hand-rolled (the library keeps its
//! dependency set to the paper's essentials).

use rand::SeedableRng;

use samplehist::core::bounds::SamplingPlan;
use samplehist::core::distinct::adversarial::theorem8_error_floor;
use samplehist::core::distinct::error::{abs_rel_error, ratio_error};
use samplehist::core::distinct::{all_estimators, FrequencyProfile};
use samplehist::core::error::max_error_against;
use samplehist::data::{distinct_count, DataSpec};
use samplehist::engine::{analyze, AnalyzeMode, AnalyzeOptions, Table};
use samplehist::storage::{BlockSampler, HeapFile, Layout};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "usage:
  samplehist plan     --n <rows> --k <buckets> --f <error> [--gamma <p>]
  samplehist analyze  --n <rows> --dist <spec> [--buckets <k>] [--mode <m>]
                      [--layout random|clustered|partial] [--compressed] [--seed <s>]
  samplehist distinct --n <rows> --dist <spec> [--rate <frac>] [--seed <s>]
  samplehist floor    --n <rows> --r <sample> [--gamma <p>]

  <spec>: zipf:<Z> | unifdup:<copies> | uniform | normal:<sd> | selfsim:<h>
  <m>:    fullscan | row:<rate> | block:<rate> | adaptive:<f>";

/// Dispatch. Returns the full output as a string (testable).
fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter();
    let command = it.next().ok_or("missing subcommand")?;
    let flags = parse_flags(it.as_slice())?;
    match command.as_str() {
        "plan" => cmd_plan(&flags),
        "analyze" => cmd_analyze(&flags),
        "distinct" => cmd_distinct(&flags),
        "floor" => cmd_floor(&flags),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// `--key value` pairs plus bare `--switch`es.
struct Flags(Vec<(String, Option<String>)>);

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|(k, _)| k == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.parse(key)?.ok_or_else(|| format!("--{key} is required"))
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let arg = &args[i];
        let key =
            arg.strip_prefix("--").ok_or_else(|| format!("expected a --flag, got {arg:?}"))?;
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        if value.is_some() {
            i += 2;
        } else {
            i += 1;
        }
        flags.push((key.to_string(), value.cloned()));
    }
    Ok(Flags(flags))
}

fn parse_dist(spec: &str, n: u64) -> Result<DataSpec, String> {
    let (name, param) = match spec.split_once(':') {
        Some((a, b)) => (a, Some(b)),
        None => (spec, None),
    };
    let num = |p: Option<&str>, what: &str| -> Result<f64, String> {
        p.ok_or_else(|| format!("{name} needs :{what}"))?
            .parse()
            .map_err(|_| format!("{name}: bad {what}"))
    };
    Ok(match name {
        "zipf" => DataSpec::Zipf { z: num(param, "Z")?, domain: ((n / 10).max(1_000)) as usize },
        "unifdup" => DataSpec::UnifDup { copies: num(param, "copies")? as u64 },
        "uniform" => DataSpec::UniformRandom { domain: 10 * n },
        "normal" => DataSpec::Normal { mean: 0.0, std_dev: num(param, "sd")? },
        "selfsim" => DataSpec::SelfSimilar { domain: n.max(1000), h: num(param, "h")? },
        other => return Err(format!("unknown distribution {other:?}")),
    })
}

fn parse_layout(s: Option<&str>) -> Result<Layout, String> {
    Ok(match s.unwrap_or("random") {
        "random" => Layout::Random,
        "clustered" => Layout::Clustered,
        "partial" => Layout::paper_partial(),
        other => return Err(format!("unknown layout {other:?}")),
    })
}

fn parse_mode(s: Option<&str>) -> Result<AnalyzeMode, String> {
    let s = s.unwrap_or("adaptive:0.1");
    let (name, param) = match s.split_once(':') {
        Some((a, b)) => (a, Some(b)),
        None => (s, None),
    };
    let rate = |p: Option<&str>| -> Result<f64, String> {
        p.ok_or_else(|| format!("{name} needs :<rate>"))?
            .parse()
            .map_err(|_| format!("{name}: bad rate"))
    };
    Ok(match name {
        "fullscan" => AnalyzeMode::FullScan,
        "row" => AnalyzeMode::RowSample { rate: rate(param)? },
        "block" => AnalyzeMode::BlockSample { rate: rate(param)? },
        "adaptive" => AnalyzeMode::Adaptive { target_f: rate(param)?, gamma: 0.05 },
        other => return Err(format!("unknown mode {other:?}")),
    })
}

fn cmd_plan(flags: &Flags) -> Result<String, String> {
    let n: u64 = flags.require("n")?;
    let k: usize = flags.require("k")?;
    let f: f64 = flags.require("f")?;
    let gamma: f64 = flags.parse("gamma")?.unwrap_or(0.01);
    let plan = SamplingPlan::new(n, k, f, gamma);
    Ok(format!(
        "Corollary 1 sampling plan\n\
           relation            n = {n}\n\
           histogram buckets   k = {k}\n\
           target max error    f = {f}\n\
           failure probability γ = {gamma}\n\
         -> record sample      r = {} ({:.2}% of the table)\n\
         -> validation sample  s = {} (Theorem 7, both directions)\n\
         -> verdict            {}\n",
        plan.record_sample_size,
        plan.sampling_rate() * 100.0,
        plan.validation_sample_size,
        if plan.sampling_is_pointless() {
            "full scan is cheaper at these settings"
        } else {
            "sample"
        }
    ))
}

fn cmd_analyze(flags: &Flags) -> Result<String, String> {
    let n: u64 = flags.require("n")?;
    let dist = parse_dist(flags.get("dist").ok_or("--dist is required")?, n)?;
    let buckets: usize = flags.parse("buckets")?.unwrap_or(200);
    let mode = parse_mode(flags.get("mode"))?;
    let layout = parse_layout(flags.get("layout"))?;
    let seed: u64 = flags.parse("seed")?.unwrap_or(0x5A17);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dataset = dist.generate(n, &mut rng);
    let label = dataset.label.clone();
    let mut sorted = dataset.values.clone();
    sorted.sort_unstable();
    let table = Table::builder("cli")
        .column_with_blocking("col", dataset.values, 128, layout, &mut rng)
        .build();

    let opts = AnalyzeOptions { buckets, mode, compressed: flags.has("compressed") };
    let stats = analyze(&table, "col", &opts, &mut rng).map_err(|e| e.to_string())?;
    let realized = max_error_against(&stats.histogram, &sorted);

    let mut out = format!(
        "ANALYZE {label} (n = {n}, layout {:?})\n\
           method           {}\n\
           pages read       {}\n\
           tuples sampled   {} ({:.2}%)\n\
           density          {:.6}\n\
           distinct (est)   {:.0}   [in sample: {}]\n\
           distinct (true)  {}\n\
           max error f      {:.4} (vs ground truth)\n",
        layout,
        stats.method,
        stats.io.pages_read,
        stats.sample_size,
        stats.sampling_rate() * 100.0,
        stats.density,
        stats.distinct_estimate,
        stats.distinct_in_sample,
        distinct_count(&sorted),
        realized.relative_max(),
    );
    if let Some(c) = &stats.compressed {
        out.push_str(&format!(
            "  compressed       {} heavy values, {} buckets used\n",
            c.high_frequency_values().len(),
            c.buckets_used()
        ));
    }
    out.push_str("  first separators ");
    let seps = stats.histogram.separators();
    for s in seps.iter().take(8) {
        out.push_str(&format!("{s} "));
    }
    if seps.len() > 8 {
        out.push_str("...");
    }
    out.push('\n');
    Ok(out)
}

fn cmd_distinct(flags: &Flags) -> Result<String, String> {
    let n: u64 = flags.require("n")?;
    let dist = parse_dist(flags.get("dist").ok_or("--dist is required")?, n)?;
    let rate: f64 = flags.parse("rate")?.unwrap_or(0.01);
    if !(0.0..=1.0).contains(&rate) || rate <= 0.0 {
        return Err("--rate must be in (0,1]".into());
    }
    let seed: u64 = flags.parse("seed")?.unwrap_or(0x5A17);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dataset = dist.generate(n, &mut rng);
    let label = dataset.label.clone();
    let mut sorted = dataset.values.clone();
    sorted.sort_unstable();
    let d = distinct_count(&sorted);

    let file = HeapFile::with_layout(dataset.values, 128, Layout::Random, &mut rng);
    let g = ((file.num_pages() as f64 * rate).ceil() as usize).clamp(1, file.num_pages());
    let mut sampler = BlockSampler::new();
    let mut sample = sampler.sample(&file, g, &mut rng);
    sample.sort_unstable();
    let profile = FrequencyProfile::from_sorted_sample(&sample);

    let mut out = format!(
        "distinct-value estimation on {label} (n = {n}, true d = {d}, \
         sample = {} tuples / {} pages)\n\
         {:<16} {:>12} {:>10} {:>10}\n",
        sample.len(),
        g,
        "estimator",
        "estimate",
        "ratio",
        "|rel|"
    );
    for est in all_estimators() {
        let e = est.estimate(&profile, n);
        if e.is_finite() {
            out.push_str(&format!(
                "{:<16} {:>12.0} {:>10.2} {:>10.4}\n",
                est.name(),
                e,
                ratio_error(e, d),
                abs_rel_error(e, d, n)
            ));
        } else {
            out.push_str(&format!(
                "{:<16} {:>12} {:>10} {:>10}\n",
                est.name(),
                "unstable",
                "-",
                "-"
            ));
        }
    }
    Ok(out)
}

fn cmd_floor(flags: &Flags) -> Result<String, String> {
    let n: u64 = flags.require("n")?;
    let r: u64 = flags.require("r")?;
    let gamma: f64 = flags.parse("gamma")?.unwrap_or(0.5);
    if r == 0 || r > n {
        return Err("need 0 < r <= n".into());
    }
    if gamma <= (-(r as f64)).exp() || gamma >= 1.0 {
        return Err("γ must be in (e^-r, 1)".into());
    }
    let floor = theorem8_error_floor(n, r, gamma);
    Ok(format!(
        "Theorem 8: sampling {r} of {n} tuples, with probability ≥ {gamma} some relation\n\
         forces ANY distinct-value estimator into ratio error ≥ {floor:.2}\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn plan_command() {
        let out = run(&argv("plan --n 10000000 --k 600 --f 0.2")).expect("valid");
        assert!(out.contains("Corollary 1"));
        assert!(out.contains("sample"));
    }

    #[test]
    fn floor_command_matches_library() {
        let out = run(&argv("floor --n 1000000 --r 200000 --gamma 0.5")).expect("valid");
        assert!(out.contains("1.86"), "{out}");
    }

    #[test]
    fn analyze_command_small() {
        let out = run(&argv("analyze --n 50000 --dist zipf:2 --buckets 50 --mode block:0.1"))
            .expect("valid");
        assert!(out.contains("ANALYZE Zipf(Z=2)"), "{out}");
        assert!(out.contains("max error"));
    }

    #[test]
    fn analyze_with_compressed_flag() {
        let out =
            run(&argv("analyze --n 50000 --dist zipf:3 --buckets 20 --mode fullscan --compressed"))
                .expect("valid");
        assert!(out.contains("compressed"), "{out}");
        assert!(out.contains("heavy values"));
    }

    #[test]
    fn distinct_command_small() {
        let out = run(&argv("distinct --n 50000 --dist unifdup:100 --rate 0.05")).expect("valid");
        assert!(out.contains("GEE"));
        assert!(out.contains("true d = 500"), "{out}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv("")).is_err());
        assert!(run(&argv("bogus")).is_err());
        assert!(run(&argv("plan --n 100")).is_err(), "missing k/f");
        assert!(run(&argv("analyze --n 100")).is_err(), "missing dist");
        assert!(run(&argv("analyze --n 1000 --dist nope")).is_err());
        assert!(run(&argv("floor --n 100 --r 200")).is_err(), "r > n");
        assert!(run(&argv("distinct --n 100 --dist uniform --rate 2.0")).is_err());
    }

    #[test]
    fn flag_parser_behaviour() {
        let f = parse_flags(&argv("--a 1 --switch --b x")).expect("valid");
        assert_eq!(f.get("a"), Some("1"));
        assert!(f.has("switch"));
        assert_eq!(f.get("switch"), None);
        assert_eq!(f.get("b"), Some("x"));
        assert!(parse_flags(&argv("positional")).is_err());
    }
}
