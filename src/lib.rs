//! # samplehist — facade crate
//!
//! One-stop re-export of the `samplehist` workspace, a production-quality
//! Rust implementation of *"Random Sampling for Histogram Construction:
//! How much is enough?"* (Chaudhuri, Motwani & Narasayya, SIGMOD 1998).
//!
//! * [`core`] — histograms, error metrics, sampling bounds, the adaptive
//!   CVB block-sampling algorithm, and distinct-value estimators.
//! * [`storage`] — the paged heap-file substrate with physical layouts
//!   and I/O accounting.
//! * [`data`] — Zipf / Unif-Dup / uniform / normal / self-similar
//!   workload generators.
//! * [`engine`] — a miniature statistics subsystem (`ANALYZE`, column
//!   statistics, selectivity estimation, access-path choice).
//!
//! See the workspace README for a guided tour and `examples/` for
//! runnable programs.

pub use samplehist_core as core;
pub use samplehist_data as data;
pub use samplehist_engine as engine;
pub use samplehist_storage as storage;
